#ifndef HPRL_CRYPTO_PACKING_H_
#define HPRL_CRYPTO_PACKING_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "crypto/bigint.h"

namespace hprl::crypto {

/// Layout of a packed Paillier plaintext: `num_slots` disjoint bit-slots of
/// `slot_bits` bits each, packed as  m = Σ v_i · 2^{slot_bits · i}.
///
/// Additively homomorphic slot-wise: as long as every slot of every operand —
/// and every slot of the SUM — stays inside [0, 2^slot_bits), homomorphic
/// addition adds the slots independently (no carries cross a slot boundary)
/// and one Encrypt/Add/Decrypt does the work of num_slots scalar ones.
/// Callers are responsible for the carry-safety analysis; the SMC layer
/// checks (|x| + |y|)² < 2^slot_bits per packed distance slot before taking
/// the packed path.
struct PackingLayout {
  int slot_bits = 0;
  int num_slots = 0;

  /// Plans a layout for a modulus of `modulus_bits` bits: capacity is
  /// (modulus_bits - 2) / slot_bits slots, so the packed value is < n/2 and
  /// survives the signed-embedding round trip. Fails when no full slot fits
  /// or slot_bits is below 8 (a squared distance of even 16 would not fit).
  static Result<PackingLayout> Plan(int modulus_bits, int slot_bits);

  /// 2^{slot_bits · slot} — the weight of slot `slot` in the packed value.
  BigInt SlotWeight(size_t slot) const;

  /// True when v can occupy one slot: 0 <= v < 2^slot_bits.
  bool SlotHolds(const BigInt& v) const;
};

/// Packs slot values into one plaintext. Fails (InvalidArgument) when there
/// are more values than slots or any value is negative or >= 2^slot_bits —
/// the slot-overflow rejection the protocol relies on to never silently
/// corrupt a neighbouring slot.
Result<BigInt> PackSlots(const std::vector<BigInt>& values,
                         const PackingLayout& layout);

/// Recovers the first `count` slot values from a packed plaintext. Exact
/// inverse of PackSlots for carry-safe inputs. Fails when packed is negative,
/// count exceeds the layout, or a nonzero residue remains past `count` slots
/// (evidence of slot overflow or a corrupted plaintext).
Result<std::vector<BigInt>> UnpackSlots(const BigInt& packed, size_t count,
                                        const PackingLayout& layout);

/// Arena variant of PackSlots: same validation, same result, but the packed
/// value lands in *out and the only transient lives in *scratch — no BigInt
/// is constructed. *out and *scratch must be distinct from each other and
/// from every input.
Status PackSlotsInto(const std::vector<const BigInt*>& values,
                     const PackingLayout& layout, BigInt* scratch,
                     BigInt* out);

/// Arena variant of UnpackSlots: slot i is written through (*slots)[i]
/// (which must hold `count` distinct destinations) and *rest carries the
/// running quotient. Same validation and failure modes as UnpackSlots.
Status UnpackSlotsInto(const BigInt& packed, size_t count,
                       const PackingLayout& layout, BigInt* rest,
                       const std::vector<BigInt*>& slots);

}  // namespace hprl::crypto

#endif  // HPRL_CRYPTO_PACKING_H_
