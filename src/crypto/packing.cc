#include "crypto/packing.h"

namespace hprl::crypto {

Result<PackingLayout> PackingLayout::Plan(int modulus_bits, int slot_bits) {
  if (slot_bits < 8) {
    return Status::InvalidArgument("packing slot width must be >= 8 bits");
  }
  // Keep the packed value strictly below 2^{modulus_bits - 2} <= n/2 so it
  // also survives the signed decode used elsewhere in the protocol.
  const int usable_bits = modulus_bits - 2;
  const int slots = usable_bits / slot_bits;
  if (slots < 1) {
    return Status::InvalidArgument("modulus too small for one packed slot");
  }
  PackingLayout layout;
  layout.slot_bits = slot_bits;
  layout.num_slots = slots;
  return layout;
}

BigInt PackingLayout::SlotWeight(size_t slot) const {
  BigInt w;
  mpz_set_ui(w.raw(), 1);
  mpz_mul_2exp(w.raw(), w.raw(), static_cast<mp_bitcnt_t>(slot_bits) * slot);
  return w;
}

bool PackingLayout::SlotHolds(const BigInt& v) const {
  return v.Sign() >= 0 &&
         static_cast<int>(v.BitLength()) <= slot_bits && v < SlotWeight(1);
}

Result<BigInt> PackSlots(const std::vector<BigInt>& values,
                         const PackingLayout& layout) {
  if (layout.slot_bits <= 0 || layout.num_slots <= 0) {
    return Status::FailedPrecondition("packing layout not planned");
  }
  if (values.size() > static_cast<size_t>(layout.num_slots)) {
    return Status::InvalidArgument("more values than packing slots");
  }
  BigInt packed;
  for (size_t i = 0; i < values.size(); ++i) {
    const BigInt& v = values[i];
    if (!layout.SlotHolds(v)) {
      return Status::InvalidArgument("value does not fit its packing slot");
    }
    BigInt shifted;
    mpz_mul_2exp(shifted.raw(), v.raw(),
                 static_cast<mp_bitcnt_t>(layout.slot_bits) * i);
    packed = packed + shifted;
  }
  return packed;
}

Result<std::vector<BigInt>> UnpackSlots(const BigInt& packed, size_t count,
                                        const PackingLayout& layout) {
  if (layout.slot_bits <= 0 || layout.num_slots <= 0) {
    return Status::FailedPrecondition("packing layout not planned");
  }
  if (packed.Sign() < 0) {
    return Status::InvalidArgument("packed value must be non-negative");
  }
  if (count > static_cast<size_t>(layout.num_slots)) {
    return Status::InvalidArgument("more slots requested than the layout has");
  }
  std::vector<BigInt> values;
  values.reserve(count);
  BigInt rest = packed;
  for (size_t i = 0; i < count; ++i) {
    BigInt slot;
    mpz_fdiv_r_2exp(slot.raw(), rest.raw(),
                    static_cast<mp_bitcnt_t>(layout.slot_bits));
    mpz_fdiv_q_2exp(rest.raw(), rest.raw(),
                    static_cast<mp_bitcnt_t>(layout.slot_bits));
    values.push_back(std::move(slot));
  }
  if (!rest.IsZero()) {
    return Status::InvalidArgument(
        "packed plaintext has residue past the requested slots");
  }
  return values;
}

Status PackSlotsInto(const std::vector<const BigInt*>& values,
                     const PackingLayout& layout, BigInt* scratch,
                     BigInt* out) {
  if (layout.slot_bits <= 0 || layout.num_slots <= 0) {
    return Status::FailedPrecondition("packing layout not planned");
  }
  if (values.size() > static_cast<size_t>(layout.num_slots)) {
    return Status::InvalidArgument("more values than packing slots");
  }
  mpz_set_ui(out->raw(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    const BigInt& v = *values[i];
    // Alloc-free SlotHolds: for v >= 0, BitLength(v) <= slot_bits is exactly
    // v < 2^slot_bits (and mpz_sizeinbase(0, 2) == 1 <= slot_bits).
    if (v.Sign() < 0 ||
        static_cast<int>(v.BitLength()) > layout.slot_bits) {
      return Status::InvalidArgument("value does not fit its packing slot");
    }
    mpz_mul_2exp(scratch->raw(), v.raw(),
                 static_cast<mp_bitcnt_t>(layout.slot_bits) * i);
    mpz_add(out->raw(), out->raw(), scratch->raw());
  }
  return Status::OK();
}

Status UnpackSlotsInto(const BigInt& packed, size_t count,
                       const PackingLayout& layout, BigInt* rest,
                       const std::vector<BigInt*>& slots) {
  if (layout.slot_bits <= 0 || layout.num_slots <= 0) {
    return Status::FailedPrecondition("packing layout not planned");
  }
  if (packed.Sign() < 0) {
    return Status::InvalidArgument("packed value must be non-negative");
  }
  if (count > static_cast<size_t>(layout.num_slots)) {
    return Status::InvalidArgument("more slots requested than the layout has");
  }
  if (slots.size() < count) {
    return Status::InvalidArgument("fewer slot destinations than slots");
  }
  mpz_set(rest->raw(), packed.raw());
  for (size_t i = 0; i < count; ++i) {
    mpz_fdiv_r_2exp(slots[i]->raw(), rest->raw(),
                    static_cast<mp_bitcnt_t>(layout.slot_bits));
    mpz_fdiv_q_2exp(rest->raw(), rest->raw(),
                    static_cast<mp_bitcnt_t>(layout.slot_bits));
  }
  if (!rest->IsZero()) {
    return Status::InvalidArgument(
        "packed plaintext has residue past the requested slots");
  }
  return Status::OK();
}

}  // namespace hprl::crypto
