#ifndef HPRL_COMMON_MATH_UTIL_H_
#define HPRL_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace hprl {

/// Shannon entropy (base 2) of a histogram of non-negative counts.
/// Zero-count buckets contribute nothing. Returns 0 for an empty or
/// single-bucket distribution.
inline double ShannonEntropy(const std::vector<int64_t>& counts) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  double h = 0.0;
  for (int64_t c : counts) {
    if (c <= 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

/// Entropy of a two-way split {a, b}.
inline double BinaryEntropy(int64_t a, int64_t b) {
  return ShannonEntropy({a, b});
}

/// Arithmetic mean; 0 for empty input.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// True when |a-b| <= eps.
inline bool ApproxEq(double a, double b, double eps = 1e-9) {
  return std::fabs(a - b) <= eps;
}

}  // namespace hprl

#endif  // HPRL_COMMON_MATH_UTIL_H_
