#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace hprl {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string msg = stream_.str();
  std::fprintf(stderr, "%s\n", msg.c_str());
}

void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s\n", file, line, cond);
  std::abort();
}

}  // namespace internal_logging

}  // namespace hprl
