#ifndef HPRL_COMMON_TIMER_H_
#define HPRL_COMMON_TIMER_H_

#include <chrono>

namespace hprl {

/// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hprl

#endif  // HPRL_COMMON_TIMER_H_
