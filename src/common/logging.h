#ifndef HPRL_COMMON_LOGGING_H_
#define HPRL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hprl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink: builds the message in a buffer and emits it (with
/// timestamp and level tag, to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define HPRL_DEBUG()                                                 \
  ::hprl::internal_logging::LogMessage(::hprl::LogLevel::kDebug, __FILE__, \
                                       __LINE__)
#define HPRL_INFO()                                                  \
  ::hprl::internal_logging::LogMessage(::hprl::LogLevel::kInfo, __FILE__,  \
                                       __LINE__)
#define HPRL_WARN()                                                  \
  ::hprl::internal_logging::LogMessage(::hprl::LogLevel::kWarning, __FILE__, \
                                       __LINE__)
#define HPRL_ERROR()                                                 \
  ::hprl::internal_logging::LogMessage(::hprl::LogLevel::kError, __FILE__, \
                                       __LINE__)

/// Fatal invariant check: always on, aborts with a message on failure.
#define HPRL_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::hprl::internal_logging::CheckFailed(#cond, __FILE__, __LINE__);       \
    }                                                                         \
  } while (0)

namespace internal_logging {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line);
}  // namespace internal_logging

}  // namespace hprl

#endif  // HPRL_COMMON_LOGGING_H_
