#ifndef HPRL_COMMON_RANDOM_H_
#define HPRL_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hprl {

/// Deterministic, seedable pseudo-random generator (xoshiro256++) used by
/// everything that needs *reproducible* randomness: data generation,
/// partitioning, random selection heuristics, property tests.
///
/// NOT suitable for cryptography — crypto code uses crypto::SecureRandom.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  /// the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Samples an index i with probability weights[i] / sum(weights).
  /// Weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace hprl

#endif  // HPRL_COMMON_RANDOM_H_
