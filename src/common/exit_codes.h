#ifndef HPRL_COMMON_EXIT_CODES_H_
#define HPRL_COMMON_EXIT_CODES_H_

#include "common/result.h"

namespace hprl {

/// Documented exit-code taxonomy of the CLI tools (hprl_link, hprl_party),
/// so supervisors and the chaos harness can tell a misconfiguration from a
/// dead fleet from a damaged artifact without parsing stderr:
///
///   0  success
///   1  unclassified runtime failure
///   2  configuration / usage error: bad flags, malformed spec, missing
///      inputs (restarting without changing the invocation cannot help)
///   3  transport failure: unreachable or dead daemons, socket/frame I/O
///      (restarting against a healthy fleet can help)
///   4  integrity failure of persistent crypto/session artifacts: corrupt
///      or fingerprint-mismatched material stores, checkpoints and session
///      journals, fenced session epochs (the artifact must be removed or
///      the right one supplied; resuming as-is would be unsound)
inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitConfig = 2;
inline constexpr int kExitTransport = 3;
inline constexpr int kExitIntegrity = 4;

/// Maps a failed Status onto the taxonomy: InvalidArgument and NotFound are
/// configuration (something named does not exist or is malformed),
/// Unavailable and IOError are transport, FailedPrecondition is an
/// integrity refusal (that is the code every corrupt-artifact and fencing
/// path returns), everything else is unclassified.
inline int ExitCodeForStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
      return kExitConfig;
    case StatusCode::kUnavailable:
    case StatusCode::kIOError:
      return kExitTransport;
    case StatusCode::kFailedPrecondition:
      return kExitIntegrity;
    default:
      return kExitFailure;
  }
}

}  // namespace hprl

#endif  // HPRL_COMMON_EXIT_CODES_H_
