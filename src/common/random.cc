#include "common/random.h"

#include <cassert>
#include <cmath>

namespace hprl {

namespace {

// splitmix64: expands a single seed into stream state.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the (vanishingly unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling on the top of the range to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double x = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;  // floating point slop: land on the last bucket
}

}  // namespace hprl
