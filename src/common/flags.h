#ifndef HPRL_COMMON_FLAGS_H_
#define HPRL_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace hprl {

/// Minimal command-line flag parser for the bench / example binaries.
///
/// Usage:
///   FlagSet flags;
///   int64_t* k = flags.AddInt("k", 32, "anonymity requirement");
///   Status s = flags.Parse(argc, argv);   // accepts --k=64 or --k 64
///
/// Unknown flags are an error; `--help` prints usage and Parse returns
/// a NotFound status the caller can treat as "exit 0".
class FlagSet {
 public:
  int64_t* AddInt(const std::string& name, int64_t def, const std::string& help);
  double* AddDouble(const std::string& name, double def, const std::string& help);
  bool* AddBool(const std::string& name, bool def, const std::string& help);
  std::string* AddString(const std::string& name, const std::string& def,
                         const std::string& help);

  Status Parse(int argc, char** argv);

  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    // Owned storage; stable addresses handed out to callers.
    int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
  };
  Status SetValue(Flag& flag, const std::string& text);

  std::map<std::string, Flag> flags_;
};

}  // namespace hprl

#endif  // HPRL_COMMON_FLAGS_H_
