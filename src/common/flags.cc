#include "common/flags.h"

#include <cstdio>

#include "common/string_util.h"

namespace hprl {

int64_t* FlagSet::AddInt(const std::string& name, int64_t def,
                         const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::kInt;
  f.help = help;
  f.int_value = def;
  return &f.int_value;
}

double* FlagSet::AddDouble(const std::string& name, double def,
                           const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::kDouble;
  f.help = help;
  f.double_value = def;
  return &f.double_value;
}

bool* FlagSet::AddBool(const std::string& name, bool def,
                       const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::kBool;
  f.help = help;
  f.bool_value = def;
  return &f.bool_value;
}

std::string* FlagSet::AddString(const std::string& name, const std::string& def,
                                const std::string& help) {
  Flag& f = flags_[name];
  f.kind = Kind::kString;
  f.help = help;
  f.string_value = def;
  return &f.string_value;
}

Status FlagSet::SetValue(Flag& flag, const std::string& text) {
  switch (flag.kind) {
    case Kind::kInt: {
      auto v = ParseInt(text);
      if (!v.ok()) return v.status();
      flag.int_value = *v;
      return Status::OK();
    }
    case Kind::kDouble: {
      auto v = ParseDouble(text);
      if (!v.ok()) return v.status();
      flag.double_value = *v;
      return Status::OK();
    }
    case Kind::kBool: {
      if (text == "true" || text == "1") {
        flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool value: " + text);
      }
      return Status::OK();
    }
    case Kind::kString:
      flag.string_value = text;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    if (arg == "help") {
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return Status::NotFound("--help requested");
    }
    std::string name = arg;
    std::string value;
    bool have_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!have_value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag sets a bool
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
    }
    HPRL_RETURN_IF_ERROR(SetValue(it->second, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    std::string def;
    switch (flag.kind) {
      case Kind::kInt:
        def = StrFormat("%lld", static_cast<long long>(flag.int_value));
        break;
      case Kind::kDouble:
        def = StrFormat("%g", flag.double_value);
        break;
      case Kind::kBool:
        def = flag.bool_value ? "true" : "false";
        break;
      case Kind::kString:
        def = flag.string_value;
        break;
    }
    out += "  --" + name + " (default: " + def + ")  " + flag.help + "\n";
  }
  return out;
}

}  // namespace hprl
