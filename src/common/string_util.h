#ifndef HPRL_COMMON_STRING_UTIL_H_
#define HPRL_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hprl {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer / double parsing: the whole string must be consumed.
Result<int64_t> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hprl

#endif  // HPRL_COMMON_STRING_UTIL_H_
