#ifndef HPRL_COMMON_RESULT_H_
#define HPRL_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hprl {

/// Holds either a value of type T or an error Status. Modeled after
/// absl::StatusOr / arrow::Result.
///
/// Accessing the value of a non-OK Result aborts in debug builds; always
/// check `ok()` (or use ValueOrDie only when failure is a programming error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status makes
  /// `return Status::InvalidArgument(...)` work.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define HPRL_ASSIGN_OR_RETURN(lhs, rexpr)              \
  auto HPRL_CONCAT_(_hprl_result_, __LINE__) = (rexpr);          \
  if (!HPRL_CONCAT_(_hprl_result_, __LINE__).ok())               \
    return HPRL_CONCAT_(_hprl_result_, __LINE__).status();       \
  lhs = std::move(HPRL_CONCAT_(_hprl_result_, __LINE__)).value()

#define HPRL_CONCAT_INNER_(a, b) a##b
#define HPRL_CONCAT_(a, b) HPRL_CONCAT_INNER_(a, b)

}  // namespace hprl

#endif  // HPRL_COMMON_RESULT_H_
