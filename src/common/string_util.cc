#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace hprl {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE)
    return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("not an integer: " + buf);
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("not a double: " + buf);
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace hprl
