#ifndef HPRL_COMMON_STATUS_H_
#define HPRL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace hprl {

/// Error codes used across the library. Styled after RocksDB/Abseil status
/// codes: functions that can fail return a Status (or Result<T>) instead of
/// throwing; exceptions are not used on any hot path.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  kUnavailable,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no message and allocates nothing. Error statuses
/// carry a code and a message. Statuses are copyable and movable.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define HPRL_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::hprl::Status _hprl_status = (expr);           \
    if (!_hprl_status.ok()) return _hprl_status;    \
  } while (0)

}  // namespace hprl

#endif  // HPRL_COMMON_STATUS_H_
