#ifndef HPRL_SERVE_GENERALIZE_H_
#define HPRL_SERVE_GENERALIZE_H_

#include <vector>

#include "common/result.h"
#include "hierarchy/vgh.h"
#include "linkage/match_rule.h"
#include "linkage/slack.h"

namespace hprl::serve {

/// Generalizes one record into the GenSequence the blocking layer consumes:
/// for each rule attribute, the record's value is lifted `gen_level` VGH
/// levels above its leaf (clamped at the root). This is the streaming
/// stand-in for the batch pipeline's k-anonymizer — a delta arrives alone,
/// so there is no cohort to anonymize against; a fixed generalization level
/// plays the release schema's role instead (docs/SERVICE.md).
///
/// `hierarchies` is indexed like rule.attrs; entries may be null for text
/// attributes (text generalizes to an exact-string GenValue). Numeric and
/// categorical attributes require a hierarchy. Null values and out-of-range
/// numerics are InvalidArgument.
Result<GenSequence> GeneralizeRecord(const Record& record,
                                     const MatchRule& rule,
                                     const std::vector<VghPtr>& hierarchies,
                                     int gen_level);

}  // namespace hprl::serve

#endif  // HPRL_SERVE_GENERALIZE_H_
