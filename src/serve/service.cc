#include "serve/service.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "serve/generalize.h"

namespace hprl::serve {

namespace {

// Tenants share one oracle, so tenant-local row ids are namespaced into
// disjoint global ranges. 2^40 rows per tenant leaves room for 2^22 tenants.
constexpr int64_t kTenantStride = int64_t{1} << 40;

}  // namespace

std::string DeltaStatusName(DeltaStatus status) {
  switch (status) {
    case DeltaStatus::kApplied:
      return "applied";
    case DeltaStatus::kQueued:
      return "queued";
    case DeltaStatus::kRejectedAllowance:
      return "rejected_allowance";
    case DeltaStatus::kRejectedQueue:
      return "rejected_queue";
  }
  return "?";
}

LinkageService::LinkageService(ServiceOptions opts, MatchOracle* oracle,
                               obs::MetricsRegistry* metrics)
    : opts_(std::move(opts)), oracle_(oracle), metrics_(metrics) {
  HPRL_CHECK(oracle_ != nullptr);
}

int64_t LinkageService::GlobalId(int tenant_index, int64_t row_id) {
  return (static_cast<int64_t>(tenant_index) + 1) * kTenantStride + row_id;
}

LinkageService::Tenant& LinkageService::GetTenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant(opts_)).first;
    it->second.name = name;
    it->second.index = next_tenant_index_++;
  }
  return it->second;
}

Result<ApplyResult> LinkageService::Apply(const RecordDelta& delta) {
  if (delta.tenant.empty()) {
    return Status::InvalidArgument("delta without a tenant id");
  }
  if (delta.row_id < 0 || delta.row_id >= kTenantStride) {
    return Status::InvalidArgument("row_id outside [0, 2^40)");
  }
  WallTimer timer;
  Tenant& t = GetTenant(delta.tenant);
  ++settled_deltas_;

  Result<ApplyResult> res = [&]() -> Result<ApplyResult> {
    // FIFO ordering per tenant: once anything is queued, every later delta
    // (erases included) parks behind it.
    if (!t.queue.empty()) {
      if (static_cast<int64_t>(t.queue.size()) >= opts_.max_queued) {
        ApplyResult r;
        r.status = DeltaStatus::kRejectedQueue;
        return r;
      }
      t.queue.push_back(delta);
      ApplyResult r;
      r.status = DeltaStatus::kQueued;
      return r;
    }
    return Admit(t, delta);
  }();
  if (!res.ok()) return res;

  res->seconds = timer.ElapsedSeconds();
  obs::Observe(metrics_, "serve.delta_seconds", res->seconds);
  switch (res->status) {
    case DeltaStatus::kApplied:
      obs::Add(metrics_, replaying_ ? "serve.deltas_replayed"
                                    : "serve.deltas_applied");
      break;
    case DeltaStatus::kQueued:
      obs::Add(metrics_, "serve.deltas_queued");
      break;
    case DeltaStatus::kRejectedAllowance:
    case DeltaStatus::kRejectedQueue:
      obs::Add(metrics_, "serve.deltas_rejected");
      break;
  }
  PublishGauges();
  return res;
}

Result<ApplyResult> LinkageService::Admit(Tenant& t,
                                          const RecordDelta& delta) {
  if (delta.op == DeltaOp::kErase) return CommitErase(t, delta);

  GenSequence seq;
  HPRL_ASSIGN_OR_RETURN(
      seq, GeneralizeRecord(delta.record, opts_.rule, opts_.hierarchies,
                            opts_.gen_level));
  std::vector<AffectedPair> pairs =
      t.blocker.Preview(delta.side, delta.row_id, seq);
  int64_t unknowns = static_cast<int64_t>(
      std::count_if(pairs.begin(), pairs.end(), [](const AffectedPair& p) {
        return p.label == PairLabel::kUnknown;
      }));
  if (unknowns > t.allowance_remaining) {
    ApplyResult r;
    if (opts_.max_queued <= 0) {
      r.status = DeltaStatus::kRejectedAllowance;
    } else {
      t.queue.push_back(delta);
      r.status = DeltaStatus::kQueued;
    }
    return r;
  }
  return CommitUpsert(t, delta, seq, pairs);
}

Result<ApplyResult> LinkageService::CommitUpsert(
    Tenant& t, const RecordDelta& delta, const GenSequence& seq,
    const std::vector<AffectedPair>& pairs) {
  ApplyResult out;
  // An update replaces the row: links settled against the old version are no
  // longer justified and must be re-derived from the new pairs.
  out.links_removed += DropLinksTouching(t, delta.side, delta.row_id);

  t.blocker.Insert(delta.side, delta.row_id, seq);
  int side = static_cast<int>(delta.side);
  t.records[{side, delta.row_id}] = delta.record;
  HPRL_RETURN_IF_ERROR(oracle_->PushResidentRow(
      side, GlobalId(t.index, delta.row_id), delta.record));

  std::vector<AffectedPair> unknowns;
  for (const AffectedPair& p : pairs) {
    switch (p.label) {
      case PairLabel::kMatch:
        // Sound by construction (paper §IV): no SMC spend needed.
        if (t.links.insert({p.r_id, p.s_id}).second) ++out.links_added;
        break;
      case PairLabel::kUnknown:
        unknowns.push_back(p);
        break;
      case PairLabel::kMismatch:
        break;
    }
  }
  obs::Add(metrics_, "serve.pairs_blocked",
           static_cast<int64_t>(pairs.size()));

  int64_t spend = static_cast<int64_t>(unknowns.size());
  t.allowance_remaining -= spend;
  t.smc_pairs_spent += spend;
  out.smc_pairs = spend;
  HPRL_RETURN_IF_ERROR(DrainUnknowns(t, unknowns, &out));

  obs::Add(metrics_, "serve.links_added", out.links_added);
  obs::Add(metrics_, "serve.links_removed", out.links_removed);
  obs::Add(metrics_, "serve.quarantined", out.quarantined);
  return out;
}

Status LinkageService::DrainUnknowns(
    Tenant& t, const std::vector<AffectedPair>& unknowns, ApplyResult* out) {
  if (unknowns.empty()) return Status::OK();
  if (replaying_) {
    // Crash replay: the journal already settled these pairs — a pair is a
    // match iff it is in the journaled link set. Pairs later removed by an
    // erase resolve to non-match here, and the replayed erase is a no-op for
    // them; the final state is identical either way.
    replayed_smc_pairs_ += static_cast<int64_t>(unknowns.size());
    obs::Add(metrics_, "serve.smc_pairs_replayed",
             static_cast<int64_t>(unknowns.size()));
    auto jit = replay_links_.find(t.name);
    const std::set<Link>* journaled =
        jit == replay_links_.end() ? nullptr : &jit->second;
    for (const AffectedPair& p : unknowns) {
      if (journaled != nullptr && journaled->count({p.r_id, p.s_id}) > 0) {
        if (t.links.insert({p.r_id, p.s_id}).second) ++out->links_added;
      }
    }
    return Status::OK();
  }
  obs::Add(metrics_, "serve.smc_pairs",
           static_cast<int64_t>(unknowns.size()));
  int batch_pairs = std::max(1, opts_.smc_batch_pairs);
  for (size_t base = 0; base < unknowns.size();
       base += static_cast<size_t>(batch_pairs)) {
    size_t end =
        std::min(unknowns.size(), base + static_cast<size_t>(batch_pairs));
    std::vector<RowPairRequest> batch;
    batch.reserve(end - base);
    for (size_t i = base; i < end; ++i) {
      const AffectedPair& p = unknowns[i];
      RowPairRequest req;
      req.a_id = GlobalId(t.index, p.r_id);
      req.b_id = GlobalId(t.index, p.s_id);
      req.a = &t.records.at({0, p.r_id});
      req.b = &t.records.at({1, p.s_id});
      batch.push_back(req);
    }
    std::vector<uint8_t> labels;
    HPRL_ASSIGN_OR_RETURN(labels, oracle_->CompareBatch(batch));
    for (size_t i = base; i < end; ++i) {
      const AffectedPair& p = unknowns[i];
      uint8_t label = labels[i - base];
      if (label == kPairMatch) {
        if (t.links.insert({p.r_id, p.s_id}).second) ++out->links_added;
      } else if (label == kPairQuarantined) {
        ++out->quarantined;
      }
    }
  }
  return Status::OK();
}

Result<ApplyResult> LinkageService::CommitErase(Tenant& t,
                                                const RecordDelta& delta) {
  ApplyResult out;
  out.links_removed += DropLinksTouching(t, delta.side, delta.row_id);
  t.blocker.Erase(delta.side, delta.row_id);
  t.records.erase({static_cast<int>(delta.side), delta.row_id});
  HPRL_RETURN_IF_ERROR(oracle_->EraseResidentRow(
      static_cast<int>(delta.side), GlobalId(t.index, delta.row_id)));
  obs::Add(metrics_, "serve.links_removed", out.links_removed);
  return out;
}

int64_t LinkageService::DropLinksTouching(Tenant& t, Side side,
                                          int64_t row_id) {
  int64_t dropped = 0;
  for (auto it = t.links.begin(); it != t.links.end();) {
    bool touches = side == Side::kR ? it->first == row_id
                                    : it->second == row_id;
    if (touches) {
      it = t.links.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

Result<ApplyResult> LinkageService::TopUp(const std::string& tenant,
                                          int64_t extra) {
  if (extra < 0) return Status::InvalidArgument("negative allowance top-up");
  Tenant& t = GetTenant(tenant);
  t.allowance_remaining += extra;
  ApplyResult agg;
  while (!t.queue.empty()) {
    // Deterministic FIFO drain: stop at the first still-inadmissible head
    // rather than skipping past it (ordering is part of the replay contract).
    RecordDelta head = t.queue.front();
    if (head.op == DeltaOp::kUpsert) {
      GenSequence seq;
      HPRL_ASSIGN_OR_RETURN(
          seq, GeneralizeRecord(head.record, opts_.rule, opts_.hierarchies,
                                opts_.gen_level));
      std::vector<AffectedPair> pairs =
          t.blocker.Preview(head.side, head.row_id, seq);
      int64_t unknowns = static_cast<int64_t>(
          std::count_if(pairs.begin(), pairs.end(), [](const AffectedPair& p) {
            return p.label == PairLabel::kUnknown;
          }));
      if (unknowns > t.allowance_remaining) break;
      t.queue.pop_front();
      ApplyResult r;
      HPRL_ASSIGN_OR_RETURN(r, CommitUpsert(t, head, seq, pairs));
      agg.smc_pairs += r.smc_pairs;
      agg.links_added += r.links_added;
      agg.links_removed += r.links_removed;
      agg.quarantined += r.quarantined;
    } else {
      t.queue.pop_front();
      ApplyResult r;
      HPRL_ASSIGN_OR_RETURN(r, CommitErase(t, head));
      agg.links_removed += r.links_removed;
    }
    obs::Add(metrics_, "serve.queue_drained");
  }
  PublishGauges();
  return agg;
}

void LinkageService::BeginReplay(std::map<std::string, std::set<Link>> links) {
  replaying_ = true;
  replay_links_ = std::move(links);
}

void LinkageService::EndReplay() {
  replaying_ = false;
  replay_links_.clear();
}

std::vector<TenantSnapshot> LinkageService::Snapshot() const {
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantSnapshot snap;
    snap.name = name;
    snap.allowance_remaining = t.allowance_remaining;
    snap.smc_pairs_spent = t.smc_pairs_spent;
    snap.queued = static_cast<int64_t>(t.queue.size());
    snap.live_rows_r = t.blocker.live_rows(Side::kR);
    snap.live_rows_s = t.blocker.live_rows(Side::kS);
    snap.links.assign(t.links.begin(), t.links.end());
    out.push_back(std::move(snap));
  }
  return out;
}

void LinkageService::PublishGauges() {
  if (metrics_ == nullptr) return;
  int64_t queued = 0, allowance = 0, rows = 0;
  for (const auto& [name, t] : tenants_) {
    queued += static_cast<int64_t>(t.queue.size());
    allowance += t.allowance_remaining;
    rows += t.blocker.live_rows(Side::kR) + t.blocker.live_rows(Side::kS);
  }
  obs::SetGauge(metrics_, "serve.tenants",
                static_cast<double>(tenants_.size()));
  obs::SetGauge(metrics_, "serve.queue_depth", static_cast<double>(queued));
  obs::SetGauge(metrics_, "serve.allowance_remaining",
                static_cast<double>(allowance));
  obs::SetGauge(metrics_, "serve.live_rows", static_cast<double>(rows));
}

}  // namespace hprl::serve
