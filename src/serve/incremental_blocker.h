#ifndef HPRL_SERVE_INCREMENTAL_BLOCKER_H_
#define HPRL_SERVE_INCREMENTAL_BLOCKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "linkage/slack.h"

namespace hprl::serve {

/// Which table a streamed record belongs to: R (the left relation) or S.
enum class Side { kR = 0, kS = 1 };

/// One affected pair surfaced by a delta: the live row on the other side and
/// the slack label of the (R, S) pair. Pairs are always reported in (r, s)
/// orientation regardless of which side the delta arrived on.
struct AffectedPair {
  int64_t r_id = -1;
  int64_t s_id = -1;
  PairLabel label = PairLabel::kUnknown;
};

/// Incremental counterpart of the batch blocking sweep: maintains the live
/// generalized rows of both sides over a DynamicSlackTable and, per
/// insert/update/delete, re-blocks only the affected cells — the delta row
/// against every live row of the *other* side — instead of the full
/// |R| × |S| sweep. Labels are bit-identical to a from-scratch SlackTable
/// rebuild over the same sequences (property-tested in tests/serve_test.cc).
///
/// Not thread-safe; the owning LinkageService serializes access.
class IncrementalBlocker {
 public:
  explicit IncrementalBlocker(MatchRule rule) : table_(std::move(rule)) {}

  /// Inserts or replaces the generalized row `(side, row_id)` and returns
  /// the labels of every (delta row, live other-side row) pair, other-side
  /// row id ascending. An update is an upsert with the same row_id: the old
  /// row's pairs vanish, the new row's pairs are returned.
  std::vector<AffectedPair> Upsert(Side side, int64_t row_id,
                                   const GenSequence& seq);

  /// Labels `seq` against the live other side without mutating any row
  /// bookkeeping — the admission-control preview. Interning the sequence's
  /// values is the only side effect; verdicts are memoized, never changed,
  /// so a preview is unobservable in later labels.
  std::vector<AffectedPair> Preview(Side side, int64_t row_id,
                                    const GenSequence& seq);

  /// Commits the row without re-labeling — the second half of a
  /// Preview-then-admit sequence (labels were already computed by Preview;
  /// verdicts are memoized, so splitting costs nothing).
  void Insert(Side side, int64_t row_id, const GenSequence& seq);

  /// Removes `(side, row_id)` if present. The caller drops the row's links;
  /// no pair labels result from a delete.
  void Erase(Side side, int64_t row_id);

  int64_t live_rows(Side side) const {
    return static_cast<int64_t>(rows(side).size());
  }
  int64_t entries_computed() const { return table_.entries_computed(); }
  const MatchRule& rule() const { return table_.rule(); }

 private:
  using ValueIds = DynamicSlackTable::ValueIds;

  const std::map<int64_t, ValueIds>& rows(Side side) const {
    return side == Side::kR ? r_rows_ : s_rows_;
  }
  std::map<int64_t, ValueIds>& rows(Side side) {
    return side == Side::kR ? r_rows_ : s_rows_;
  }

  std::vector<AffectedPair> Label(Side side, int64_t row_id,
                                  const ValueIds& ids) const;

  DynamicSlackTable table_;
  // Live generalized rows, keyed by stable row id (ordered: affected-pair
  // output and replay order must be deterministic).
  std::map<int64_t, ValueIds> r_rows_;
  std::map<int64_t, ValueIds> s_rows_;
};

}  // namespace hprl::serve

#endif  // HPRL_SERVE_INCREMENTAL_BLOCKER_H_
