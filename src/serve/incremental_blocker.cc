#include "serve/incremental_blocker.h"

namespace hprl::serve {

std::vector<AffectedPair> IncrementalBlocker::Label(
    Side side, int64_t row_id, const ValueIds& ids) const {
  const auto& others = rows(side == Side::kR ? Side::kS : Side::kR);
  std::vector<AffectedPair> out;
  out.reserve(others.size());
  for (const auto& [other_id, other_ids] : others) {
    AffectedPair p;
    if (side == Side::kR) {
      p.r_id = row_id;
      p.s_id = other_id;
      p.label = table_.Decide(ids, other_ids);
    } else {
      p.r_id = other_id;
      p.s_id = row_id;
      p.label = table_.Decide(other_ids, ids);
    }
    out.push_back(p);
  }
  return out;
}

std::vector<AffectedPair> IncrementalBlocker::Upsert(Side side, int64_t row_id,
                                                     const GenSequence& seq) {
  ValueIds ids =
      side == Side::kR ? table_.InternR(seq) : table_.InternS(seq);
  std::vector<AffectedPair> out = Label(side, row_id, ids);
  rows(side)[row_id] = std::move(ids);
  return out;
}

std::vector<AffectedPair> IncrementalBlocker::Preview(Side side,
                                                      int64_t row_id,
                                                      const GenSequence& seq) {
  ValueIds ids =
      side == Side::kR ? table_.InternR(seq) : table_.InternS(seq);
  return Label(side, row_id, ids);
}

void IncrementalBlocker::Insert(Side side, int64_t row_id,
                                const GenSequence& seq) {
  rows(side)[row_id] =
      side == Side::kR ? table_.InternR(seq) : table_.InternS(seq);
}

void IncrementalBlocker::Erase(Side side, int64_t row_id) {
  rows(side).erase(row_id);
}

}  // namespace hprl::serve
