#ifndef HPRL_SERVE_SERVICE_H_
#define HPRL_SERVE_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "linkage/oracle.h"
#include "obs/metrics.h"
#include "serve/incremental_blocker.h"

namespace hprl::serve {

/// A settled link between R row `first` and S row `second` (tenant-local
/// row ids).
using Link = std::pair<int64_t, int64_t>;

enum class DeltaOp { kUpsert, kErase };

/// One streamed record mutation. For kErase the record may be empty.
struct RecordDelta {
  DeltaOp op = DeltaOp::kUpsert;
  Side side = Side::kR;
  std::string tenant;
  int64_t row_id = -1;
  Record record;
};

/// Admission outcome of one delta. Every delta gets exactly one of these —
/// exhaustion queues or rejects with a distinct status, never a silent drop.
enum class DeltaStatus {
  kApplied,            ///< committed; links settled
  kQueued,             ///< admitted but parked behind the tenant's allowance
  kRejectedAllowance,  ///< allowance exhausted and queueing disabled
  kRejectedQueue,      ///< allowance exhausted and the queue is full
};

std::string DeltaStatusName(DeltaStatus status);

/// What one Apply (or queue-drain step) did.
struct ApplyResult {
  DeltaStatus status = DeltaStatus::kApplied;
  int64_t smc_pairs = 0;      ///< straddling pairs spent (live or replayed)
  int64_t links_added = 0;
  int64_t links_removed = 0;
  int64_t quarantined = 0;    ///< U pairs the oracle could not label
  double seconds = 0;         ///< delta-to-verdict wall time
};

/// Point-in-time view of one tenant for journaling and reports.
struct TenantSnapshot {
  std::string name;
  int64_t allowance_remaining = 0;
  int64_t smc_pairs_spent = 0;
  int64_t queued = 0;
  int64_t live_rows_r = 0;
  int64_t live_rows_s = 0;
  std::vector<Link> links;  ///< sorted (std::set iteration order)
};

struct ServiceOptions {
  MatchRule rule;
  std::vector<VghPtr> hierarchies;  ///< indexed like rule.attrs
  /// VGH levels each attribute is lifted above its leaf (the streaming
  /// stand-in for the batch anonymizer's release schema).
  int gen_level = 1;
  /// Per-tenant SMC allowance in pairs: admission control. A delta whose
  /// straddling-pair preview exceeds the remainder queues (or is rejected).
  int64_t tenant_allowance = 1'000'000;
  /// Queue capacity per tenant; 0 disables queueing (reject instead).
  int64_t max_queued = 1024;
  /// U pairs per CompareBatch call (the windowed RPC path batches further).
  int smc_batch_pairs = 32;
};

/// Long-lived multi-tenant streaming linkage service — the paper's hybrid
/// pipeline turned inside out. Each tenant owns an IncrementalBlocker; a
/// record delta is generalized, previewed against the live other side, and
/// admitted against the tenant's SMC allowance; admitted straddling pairs
/// drain through the shared MatchOracle (batched); M pairs link directly
/// (precision 100% by construction). Deltas for a tenant whose allowance is
/// exhausted queue FIFO and drain on TopUp. See docs/SERVICE.md.
///
/// Crash replay: after BeginReplay(journaled links), Apply resolves U pairs
/// by looking them up in the journaled link set instead of invoking the
/// oracle — allowance spend is recomputed identically (it depends only on
/// the deterministic U count), so replaying the settled prefix of the delta
/// stream reproduces the pre-crash state exactly. Resident-row announcements
/// still flow to the oracle during replay so live deltas after EndReplay can
/// pair against replayed rows.
///
/// Not thread-safe; callers serialize Apply (the CLI driver is a single
/// reader loop).
class LinkageService {
 public:
  LinkageService(ServiceOptions opts, MatchOracle* oracle,
                 obs::MetricsRegistry* metrics = nullptr);

  /// Applies one delta. Errors are malformed input (bad attribute values,
  /// arity) or oracle transport failures — admission outcomes are statuses
  /// inside ApplyResult, not errors.
  Result<ApplyResult> Apply(const RecordDelta& delta);

  /// Adds `extra` allowance to the tenant and drains its queue FIFO until
  /// the head is inadmissible again. Returns the aggregate of the drained
  /// deltas' results.
  Result<ApplyResult> TopUp(const std::string& tenant, int64_t extra);

  /// Enters replay mode: subsequent Apply calls resolve U pairs against
  /// `links` (keyed by tenant) instead of the oracle.
  void BeginReplay(std::map<std::string, std::set<Link>> links);
  void EndReplay();
  bool replaying() const { return replaying_; }

  /// Deltas whose admission outcome is settled (every Apply call counts —
  /// applied, queued, and rejected are all deterministic decisions). The
  /// journal records this as the resume position in the delta stream.
  int64_t settled_deltas() const { return settled_deltas_; }
  int64_t replayed_smc_pairs() const { return replayed_smc_pairs_; }

  /// Tenant snapshots, name-sorted (deterministic journal layout).
  std::vector<TenantSnapshot> Snapshot() const;

  const ServiceOptions& options() const { return opts_; }

 private:
  struct Tenant {
    std::string name;
    int index = 0;  ///< dense id, assigned at first sight (arrival order)
    IncrementalBlocker blocker;
    // Tenant-local records by (side, row_id); CompareBatch borrows these.
    std::map<std::pair<int, int64_t>, Record> records;
    std::set<Link> links;
    std::deque<RecordDelta> queue;
    int64_t allowance_remaining = 0;
    int64_t smc_pairs_spent = 0;

    explicit Tenant(const ServiceOptions& opts)
        : blocker(opts.rule), allowance_remaining(opts.tenant_allowance) {}
  };

  Tenant& GetTenant(const std::string& name);
  /// Globally unique oracle row id: tenants share one oracle, so local row
  /// ids are namespaced by the dense tenant index.
  static int64_t GlobalId(int tenant_index, int64_t row_id);

  /// Admission decision + commit for one delta (queue already consulted).
  Result<ApplyResult> Admit(Tenant& t, const RecordDelta& delta);
  Result<ApplyResult> CommitUpsert(Tenant& t, const RecordDelta& delta,
                                   const GenSequence& seq,
                                   const std::vector<AffectedPair>& pairs);
  Result<ApplyResult> CommitErase(Tenant& t, const RecordDelta& delta);
  /// Labels `pairs`' U subset through the oracle (or the replay set).
  Status DrainUnknowns(Tenant& t, const std::vector<AffectedPair>& unknowns,
                       ApplyResult* out);
  int64_t DropLinksTouching(Tenant& t, Side side, int64_t row_id);
  void PublishGauges();

  ServiceOptions opts_;
  MatchOracle* oracle_;
  obs::MetricsRegistry* metrics_;
  std::map<std::string, Tenant> tenants_;
  int next_tenant_index_ = 0;
  int64_t settled_deltas_ = 0;
  int64_t replayed_smc_pairs_ = 0;
  bool replaying_ = false;
  std::map<std::string, std::set<Link>> replay_links_;
};

}  // namespace hprl::serve

#endif  // HPRL_SERVE_SERVICE_H_
