#include "serve/generalize.h"

#include <algorithm>
#include <string>

namespace hprl::serve {

Result<GenSequence> GeneralizeRecord(const Record& record,
                                     const MatchRule& rule,
                                     const std::vector<VghPtr>& hierarchies,
                                     int gen_level) {
  if (gen_level < 0) {
    return Status::InvalidArgument("gen_level must be non-negative");
  }
  GenSequence seq;
  seq.reserve(rule.attrs.size());
  for (size_t i = 0; i < rule.attrs.size(); ++i) {
    const AttrRule& attr = rule.attrs[i];
    if (attr.attr_index < 0 ||
        attr.attr_index >= static_cast<int>(record.size())) {
      return Status::InvalidArgument("rule attr_index outside record arity");
    }
    const Value& v = record[attr.attr_index];
    if (v.is_null()) {
      return Status::InvalidArgument("null value for rule attribute " +
                                     attr.name);
    }
    if (attr.type == AttrType::kText) {
      if (v.kind() != Value::Kind::kText) {
        return Status::InvalidArgument("expected text value for " + attr.name);
      }
      seq.push_back(GenValue::TextPrefix(v.text(), /*exact=*/true));
      continue;
    }
    const VghPtr& vgh = i < hierarchies.size() ? hierarchies[i] : nullptr;
    if (vgh == nullptr) {
      return Status::InvalidArgument("missing hierarchy for attribute " +
                                     attr.name);
    }
    int leaf = -1;
    if (attr.type == AttrType::kNumeric) {
      if (v.kind() != Value::Kind::kNumeric) {
        return Status::InvalidArgument("expected numeric value for " +
                                       attr.name);
      }
      HPRL_ASSIGN_OR_RETURN(leaf, vgh->LeafForNumeric(v.num()));
    } else {
      if (v.kind() != Value::Kind::kCategory) {
        return Status::InvalidArgument("expected categorical value for " +
                                       attr.name);
      }
      if (v.category() < 0 || v.category() >= vgh->num_leaves()) {
        return Status::InvalidArgument("category id outside hierarchy for " +
                                       attr.name);
      }
      leaf = vgh->LeafForCategory(v.category());
    }
    int target = std::max(0, vgh->level(leaf) - gen_level);
    seq.push_back(vgh->Gen(vgh->AncestorAtLevel(leaf, target)));
  }
  return seq;
}

}  // namespace hprl::serve
