#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency-
# sensitive pieces (metrics registry, threaded blocking, session plumbing).
#
#   scripts/verify.sh            # full: tier-1 build+tests, then TSan subset
#   scripts/verify.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped TSan pass (--fast) =="
  exit 0
fi

echo "== TSan: metrics registry + threaded blocking + parallel SMC =="
cmake -B build-tsan -S . -DHPRL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target obs_test blocking_test session_test \
  parallel_smc_test crypto_test
./build-tsan/tests/obs_test
./build-tsan/tests/blocking_test
./build-tsan/tests/session_test
./build-tsan/tests/parallel_smc_test
./build-tsan/tests/crypto_test

echo "== verify OK =="
