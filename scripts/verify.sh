#!/usr/bin/env bash
# Tier-1 verification plus the process-level smokes (TCP transport, material
# store, comparator fleet, failover, seeded chaos schedules) and sanitizer
# passes (ASan/TSan/UBSan) over the concurrency- and codec-sensitive pieces.
#
#   scripts/verify.sh            # everything
#   scripts/verify.sh --fast     # tier-1 + smokes only (no bench/sanitizers)
#   scripts/verify.sh --quick    # inner loop: build + `ctest -L tier1` only
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
  echo "== quick: configure + build + tier1-labeled ctest =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && ctest -L tier1 --output-on-failure -j)
  echo "== quick OK (sub-second suites only; run without --quick before merging) =="
  exit 0
fi

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== fault-matrix smoke: three pinned fault schedules =="
# ctest already ran the suite at the default seed (11); sweep two more
# schedules so a fix tuned to one seed cannot pass silently.
for seed in 11 23 47; do
  echo "-- fault schedule seed ${seed}"
  HPRL_FAULT_SEED="${seed}" ./build/tests/fault_test --gtest_brief=1
done

echo "== tcp transport smoke: three-process loopback, bit-identical links =="
# The coordinator spawns three hprl_party daemons on loopback and the run
# must reproduce the in-process transport's links bit for bit (pinned seed,
# exact protocol). Also checks the 5% wire-vs-accounted byte criterion.
cmake --build build -j --target hprl_link hprl_party hprl_gen
TCP_TMP="$(mktemp -d)"
trap 'rm -rf "$TCP_TMP"' EXIT
./build/tools/hprl_gen --out "$TCP_TMP" --rows 300 --seed 7 >/dev/null
sed -i 's/^keybits .*/keybits 256/; s/^allowance .*/allowance 0.01/' \
  "$TCP_TMP/linkage.spec"
./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
  --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" \
  --links "$TCP_TMP/links_inproc.csv" >/dev/null
./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
  --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" --transport tcp \
  --links "$TCP_TMP/links_tcp.csv" \
  --metrics_out "$TCP_TMP/run_tcp.json" >/dev/null
diff "$TCP_TMP/links_inproc.csv" "$TCP_TMP/links_tcp.csv" \
  || { echo "FAIL: tcp links differ from in-process links"; exit 1; }
python3 - "$TCP_TMP/run_tcp.json" <<'EOF'
import json, sys
g = json.load(open(sys.argv[1]))["gauges"]
wire, bus = g["net.wire_bytes_sent"], g["net.bus_accounted_bytes"]
drift = abs(wire - bus) / wire
assert drift < 0.05, f"wire {wire} vs accounted {bus}: drift {drift:.4f}"
print(f"tcp loopback OK: links bit-identical, byte drift {drift:.4%}")
EOF

echo "== offline/online smoke: cold-then-warm material, bit-identical links =="
# First run is cold (empty store: generate + persist), second is warm
# (adopt persisted material). Warm links must be bit-identical and the
# warm offline phase must be a small fraction of the cold one; the same
# warm store must also reproduce the links over TCP and a 2-shard fleet
# (the daemons keep their own stores, so their first run is their cold).
MAT_DIR="$TCP_TMP/material"
for phase in cold warm; do
  ./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
    --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" \
    --smc_seed 4242 --material_dir "$MAT_DIR" --offline_pairs 64 \
    --links "$TCP_TMP/links_${phase}.csv" \
    --metrics_out "$TCP_TMP/run_${phase}.json" >/dev/null
done
diff "$TCP_TMP/links_cold.csv" "$TCP_TMP/links_warm.csv" \
  || { echo "FAIL: warm-material links differ from cold links"; exit 1; }
python3 - "$TCP_TMP/run_cold.json" "$TCP_TMP/run_warm.json" <<'EOF'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
assert cold["counters"].get("crypto.material.hits", 0) == 0, "cold run hit"
assert cold["counters"].get("crypto.material.misses", 0) >= 1, "no cold miss"
hits = warm["counters"].get("crypto.material.hits", 0)
assert hits >= 1, "warm run did not adopt persisted material"
co, wo = cold["metrics"]["offline_seconds"], warm["metrics"]["offline_seconds"]
assert co > 0 and wo < 0.5 * co, f"warm offline {wo:.3f}s vs cold {co:.3f}s"
print(f"material OK: warm adopted ({hits} hit), offline {co:.3f}s -> {wo:.3f}s")
EOF
for variant in tcp2 fleet2; do
  extra=()
  [[ "$variant" == fleet2 ]] && extra=(--shards 2)
  ./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
    --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" --transport tcp "${extra[@]}" \
    --smc_seed 4242 --material_dir "$MAT_DIR/$variant" --offline_pairs 64 \
    --links "$TCP_TMP/links_mat_$variant.csv" >/dev/null
  ./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
    --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" --transport tcp "${extra[@]}" \
    --smc_seed 4242 --material_dir "$MAT_DIR/$variant" --offline_pairs 64 \
    --links "$TCP_TMP/links_mat_${variant}_warm.csv" >/dev/null
  diff "$TCP_TMP/links_cold.csv" "$TCP_TMP/links_mat_${variant}_warm.csv" \
    || { echo "FAIL: warm $variant links differ from cold inproc"; exit 1; }
done
echo "material OK: warm tcp + warm 2-shard fleet links bit-identical"

echo "== comparator fleet smoke: 2 shards (7 processes), bit-identical links =="
# Sharding is a throughput measure only: a 2-shard fleet run must reproduce
# the in-process links bit for bit at the pinned seed (docs/CLUSTER.md).
./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
  --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" --transport tcp --shards 2 \
  --links "$TCP_TMP/links_fleet.csv" >/dev/null
diff "$TCP_TMP/links_inproc.csv" "$TCP_TMP/links_fleet.csv" \
  || { echo "FAIL: 2-shard fleet links differ from in-process links"; exit 1; }
echo "fleet OK: 2-shard links bit-identical to in-process"

echo "== fleet failover smoke: one replica SIGKILLed mid-drain =="
# Two manually started shard meshes; bob#1 is SIGKILLed while the drain is
# in flight. The coordinator must rebalance its work onto shard 0 and still
# produce bit-identical links with zero quarantined pairs.
BASE=$((20000 + RANDOM % 20000))
FLEET_PIDS=()
BOB1_PID=""
for s in 0 1; do
  A="127.0.0.1:$((BASE + 10 * s + 1))"
  B="127.0.0.1:$((BASE + 10 * s + 2))"
  Q="127.0.0.1:$((BASE + 10 * s + 3))"
  for role in alice bob qp; do
    ./build/tools/hprl_party --role "$role" --alice "$A" --bob "$B" \
      --qp "$Q" --shard "$s" >/dev/null 2>&1 &
    FLEET_PIDS+=($!)
    if [[ "$role" == bob && "$s" == 1 ]]; then BOB1_PID=$!; fi
  done
done
sleep 0.5
PARTIES="127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2)),127.0.0.1:$((BASE + 3))"
PARTIES="$PARTIES;127.0.0.1:$((BASE + 11)),127.0.0.1:$((BASE + 12)),127.0.0.1:$((BASE + 13))"
./build/tools/hprl_link --spec "$TCP_TMP/linkage.spec" \
  --r "$TCP_TMP/r.csv" --s "$TCP_TMP/s.csv" --transport tcp \
  --parties "$PARTIES" --net_emu_latency_micros 20000 \
  --links "$TCP_TMP/links_killed.csv" \
  --metrics_out "$TCP_TMP/run_killed.json" >/dev/null &
LINK_PID=$!
sleep 1.5
kill -9 "$BOB1_PID" 2>/dev/null || true
wait "$LINK_PID" \
  || { echo "FAIL: fleet run did not survive the killed replica"; exit 1; }
for pid in "${FLEET_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
wait 2>/dev/null || true
diff "$TCP_TMP/links_inproc.csv" "$TCP_TMP/links_killed.csv" \
  || { echo "FAIL: killed-replica links differ from in-process links"; exit 1; }
python3 - "$TCP_TMP/run_killed.json" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
quarantined = run["metrics"]["quarantined_pairs"]
rebalanced = run["counters"].get("net.membership.rebalanced_pairs", 0)
assert quarantined == 0, f"{quarantined} pairs quarantined despite a live shard"
assert rebalanced > 0, "no pairs rebalanced: the kill missed the drain"
print(f"failover OK: links bit-identical, {rebalanced} pairs rebalanced, "
      f"0 quarantined")
EOF

echo "== chaos smoke: seeded crash/stun schedules (scripts/chaos_smoke.sh) =="
# Three pinned fault schedules, each replaying a SIGSTOP pulse, a whole-shard
# SIGKILL with identical-argv restart (rejoin handshake), and coordinator
# SIGKILLs recovered with --resume — in-process and across a 2-shard TCP
# fleet. Every schedule must converge to the uninterrupted run's links.
for seed in 3 11 29; do
  scripts/chaos_smoke.sh "$seed"
done

echo "== serve smoke: 1k-delta churn stream, crash/resume + tcp fleet =="
# Streaming service end to end (scripts/serve_smoke.sh --check): final links
# bit-identical to a one-batch replay, mid-stream coordinator SIGKILL
# recovered by --resume with zero lost/duplicated verdicts, and the measured
# throughput/p99 held against the committed `streaming` bench block.
scripts/serve_smoke.sh --check

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer passes and bench check (--fast) =="
  exit 0
fi

echo "== bench check: hot-path speedups vs committed BENCH_hotpath.json =="
# Re-runs the smoke benches and fails when any recorded speedup drops below
# 80% of its committed value (scripts/bench_smoke.sh --check).
scripts/bench_smoke.sh --check

echo "== ASan: fault injection + membership/scheduler + TCP + material =="
cmake -B build-asan -S . -DHPRL_SANITIZE=address >/dev/null
cmake --build build-asan -j --target fault_test membership_test net_test \
  material_test journal_test framing_test arena_test
./build-asan/tests/fault_test
./build-asan/tests/membership_test
./build-asan/tests/net_test
./build-asan/tests/material_test
./build-asan/tests/journal_test
./build-asan/tests/framing_test
./build-asan/tests/arena_test

echo "== TSan: metrics registry + threaded blocking + parallel/faulty SMC =="
cmake -B build-tsan -S . -DHPRL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target obs_test blocking_test session_test \
  parallel_smc_test crypto_test fault_test membership_test net_test \
  material_test journal_test
./build-tsan/tests/obs_test
./build-tsan/tests/blocking_test
./build-tsan/tests/session_test
./build-tsan/tests/parallel_smc_test
./build-tsan/tests/crypto_test
./build-tsan/tests/fault_test
./build-tsan/tests/membership_test
./build-tsan/tests/net_test
./build-tsan/tests/material_test
./build-tsan/tests/journal_test

echo "== UBSan: wire/journal codecs + membership + fault schedules =="
cmake -B build-ubsan -S . -DHPRL_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j --target fault_test membership_test \
  journal_test net_test framing_test
./build-ubsan/tests/fault_test
./build-ubsan/tests/membership_test
./build-ubsan/tests/journal_test
./build-ubsan/tests/net_test
./build-ubsan/tests/framing_test

echo "== verify OK =="
