#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency-
# sensitive pieces (metrics registry, threaded blocking, session plumbing).
#
#   scripts/verify.sh            # full: tier-1 build+tests, then TSan subset
#   scripts/verify.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== fault-matrix smoke: three pinned fault schedules =="
# ctest already ran the suite at the default seed (11); sweep two more
# schedules so a fix tuned to one seed cannot pass silently.
for seed in 11 23 47; do
  echo "-- fault schedule seed ${seed}"
  HPRL_FAULT_SEED="${seed}" ./build/tests/fault_test --gtest_brief=1
done

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipped sanitizer passes (--fast) =="
  exit 0
fi

echo "== ASan: fault injection (corrupted payloads, retries, checkpoints) =="
cmake -B build-asan -S . -DHPRL_SANITIZE=address >/dev/null
cmake --build build-asan -j --target fault_test
./build-asan/tests/fault_test

echo "== TSan: metrics registry + threaded blocking + parallel/faulty SMC =="
cmake -B build-tsan -S . -DHPRL_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target obs_test blocking_test session_test \
  parallel_smc_test crypto_test fault_test
./build-tsan/tests/obs_test
./build-tsan/tests/blocking_test
./build-tsan/tests/session_test
./build-tsan/tests/parallel_smc_test
./build-tsan/tests/crypto_test
./build-tsan/tests/fault_test

echo "== verify OK =="
