#!/usr/bin/env bash
# Deterministic chaos smoke: SIGKILL/SIGSTOP replicas and the coordinator at
# seed-derived schedule points, then require the fleet to converge to the
# uninterrupted run's links, bit for bit, with zero quarantined pairs
# (docs/ROBUSTNESS.md).
#
#   scripts/chaos_smoke.sh [SEED]
#
# Everything about a run is pinned by SEED — the kill/stun/restart delays,
# the stunned replica, and the port block all come from one LCG stream — so
# `chaos_smoke.sh 11` replays the same fault schedule every time. Three
# scenarios:
#
#   A. in-process coordinator crash: hprl_link (journaling on) is SIGKILLed
#      mid-drain; the relaunch restores the session journal with --resume
#      and drains only the remainder.
#   B. fleet replica crash: one 2-shard-TCP replica takes a SIGSTOP/SIGCONT
#      pulse (missed heartbeats), then its whole shard is SIGKILLed
#      mid-drain and restarted with identical argv — the rejoin handshake
#      re-admits the shard and it receives scheduled work again.
#   C. fleet coordinator crash: the coordinator of a 2-shard TCP run is
#      SIGKILLed mid-drain and relaunched with --resume against the SAME
#      daemons; the bumped session epoch fences anything its predecessor
#      left behind.
set -euo pipefail
cd "$(dirname "$0")/.."
SEED="${1:-11}"
BUILD="${BUILD:-build}"

# --- seed-derived schedule -------------------------------------------------
H=$((SEED))
next() { H=$(( (H * 1103515245 + 12345) % 2147483648 )); }
ms() { printf '%d.%03d' $(($1 / 1000)) $(($1 % 1000)); }

next; A_KILL_MS=$((   2400 + H % 1000 )) # A: coordinator SIGKILL point
next; STUN_MS=$((      400 + H % 400 ))  # B: SIGSTOP point
next; STUN_LEN_MS=$((  300 + H % 300 ))  # B: pulse length
next; STUN_ROLE=$((          H % 3   ))  # B: which shard-1 replica stalls
next; KILL_MS=$((     1000 + H % 700 ))  # B: shard-1 SIGKILL point
next; RESTART_MS=$((   300 + H % 500 ))  # B: restart delay after the kill
next; C_KILL_MS=$((   1400 + H % 700 ))  # C: coordinator SIGKILL point
next; BASE=$((       21000 + H % 18000 ))

TMP="$(mktemp -d)"
DAEMONS=()
# Daemons start through a subshell so the script's job control never owns
# them: a SIGKILLed replica then dies without a "Killed" line in the log.
spawn() { ( "$@" >/dev/null 2>&1 & echo $! ); }
cleanup() {
  for pid in "${DAEMONS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== chaos seed $SEED: kills @${A_KILL_MS}/${KILL_MS}/${C_KILL_MS}ms," \
  "stun replica $STUN_ROLE @${STUN_MS}ms for ${STUN_LEN_MS}ms, ports $BASE+"

# 450 rows -> a 900-pair SMC drain with several journal flushes behind any
# mid-drain kill point, and a seed whose ground truth has real links (13),
# so a resume that merged journaled matches wrongly would change the output.
"./$BUILD/tools/hprl_gen" --out "$TMP" --rows 450 --seed 5 >/dev/null
sed -i 's/^keybits .*/keybits 256/; s/^allowance .*/allowance 0.01/' \
  "$TMP/linkage.spec"
LINK=( "./$BUILD/tools/hprl_link" --spec "$TMP/linkage.spec"
       --r "$TMP/r.csv" --s "$TMP/s.csv" )

# The uninterrupted baseline every chaos scenario must converge to.
"${LINK[@]}" --links "$TMP/links_base.csv" >/dev/null

assert_converged() {  # <links> <metrics.json> <label>
  diff "$TMP/links_base.csv" "$1" >/dev/null \
    || { echo "FAIL($3): links differ from the uninterrupted run"; exit 1; }
  python3 - "$2" "$3" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
q = run["metrics"]["quarantined_pairs"]
assert q == 0, f"{sys.argv[2]}: {q} pairs quarantined"
EOF
}

assert_resumed() {  # <metrics.json> <label>
  python3 - "$1" "$2" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
r = m.get("resumed_pairs", 0)
assert r > 0, f"{sys.argv[2]}: --resume restored a journal but skipped 0 pairs"
print(f"   {sys.argv[2]} OK: resumed past {r} journaled pairs")
EOF
}

# --- A: in-process coordinator SIGKILL + journal resume --------------------
echo "-- A: coordinator SIGKILL at ${A_KILL_MS}ms, relaunch with --resume"
# Delay-only fault injection stretches the drain (labels are untouched) so
# the kill lands mid-SMC with the first journal flush (256 pairs, ~2s at
# this delay) already behind it.
A_ARGS=( --journal "$TMP/a.jnl" --links "$TMP/links_a.csv"
         --metrics_out "$TMP/run_a.json"
         --fault_seed "$SEED" --fault_delay 1 --fault_delay_micros 1500 )
VICTIM=$(spawn "${LINK[@]}" "${A_ARGS[@]}")
sleep "$(ms "$A_KILL_MS")"
kill -9 "$VICTIM" 2>/dev/null || true
sleep 0.2  # let the kernel reap before relaunching over the same journal
RESUME=()
# The journal only exists once the first batch flush committed; a kill that
# landed before that point restarts clean, which must also converge.
[[ -f "$TMP/a.jnl" ]] && RESUME=( --resume )
"${LINK[@]}" "${A_ARGS[@]}" ${RESUME[@]+"${RESUME[@]}"} >/dev/null
assert_converged "$TMP/links_a.csv" "$TMP/run_a.json" "inproc-resume"
if [[ ${#RESUME[@]} -gt 0 ]]; then
  assert_resumed "$TMP/run_a.json" "inproc-resume"
else
  echo "   inproc-resume OK: killed pre-flush, clean restart converged"
fi

# --- B: fleet replica SIGSTOP pulse + whole-shard SIGKILL and rejoin -------
echo "-- B: shard-1 SIGKILL at ${KILL_MS}ms, identical-argv restart" \
  "+${RESTART_MS}ms"
PIDS=()   # index 3*shard + role: 0..2 = shard 0, 3..5 = shard 1
CMDS=()
for s in 0 1; do
  A="127.0.0.1:$((BASE + 10 * s + 1))"
  B="127.0.0.1:$((BASE + 10 * s + 2))"
  Q="127.0.0.1:$((BASE + 10 * s + 3))"
  for role in alice bob qp; do
    CMD="./$BUILD/tools/hprl_party --role $role --alice $A --bob $B \
--qp $Q --shard $s"
    PID=$(spawn $CMD)
    PIDS+=("$PID"); DAEMONS+=("$PID"); CMDS+=("$CMD")
  done
done
sleep 0.5
PARTIES="127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2)),127.0.0.1:$((BASE + 3))"
PARTIES="$PARTIES;127.0.0.1:$((BASE + 11)),127.0.0.1:$((BASE + 12)),127.0.0.1:$((BASE + 13))"
"${LINK[@]}" --transport tcp --parties "$PARTIES" \
  --net_emu_latency_micros 10000 --hb_interval_ms 100 \
  --links "$TMP/links_b.csv" --metrics_out "$TMP/run_b.json" >/dev/null &
COORD=$!
# Heartbeat chaos first: one shard-1 replica stalls under SIGSTOP long
# enough to miss probes, then resumes (the shard dies for real later).
sleep "$(ms "$STUN_MS")"
STUN_PID="${PIDS[$((3 + STUN_ROLE))]}"
kill -STOP "$STUN_PID" 2>/dev/null || true
( sleep "$(ms "$STUN_LEN_MS")"; kill -CONT "$STUN_PID" 2>/dev/null ) &
# The real crash: a dead replica retires its whole shard (its mesh peers
# abort mid-protocol), so the operational recovery unit is the shard.
sleep "$(ms $((KILL_MS - STUN_MS)))"
for i in 3 4 5; do kill -9 "${PIDS[$i]}" 2>/dev/null || true; done
sleep "$(ms "$RESTART_MS")"
for i in 3 4 5; do
  DAEMONS+=("$(spawn ${CMDS[$i]})")
done
wait "$COORD" \
  || { echo "FAIL(rejoin): coordinator did not survive the crash"; exit 1; }
assert_converged "$TMP/links_b.csv" "$TMP/run_b.json" "rejoin"
python3 - "$TMP/run_b.json" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1]))
rejoins = max(run.get("counters", {}).get("net.membership.rejoins", 0),
              int(run.get("gauges", {}).get("net.membership.rejoins", 0)))
assert rejoins >= 3, f"shard did not rejoin: {rejoins} rejoin(s) recorded"
print(f"   rejoin OK: {rejoins} replicas re-admitted, links bit-identical")
EOF
wait 2>/dev/null || true

# --- C: fleet coordinator SIGKILL + --resume against the same daemons ------
echo "-- C: fleet coordinator SIGKILL at ${C_KILL_MS}ms, --resume relaunch"
BASE=$((BASE + 100))
PARTIES="127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2)),127.0.0.1:$((BASE + 3))"
PARTIES="$PARTIES;127.0.0.1:$((BASE + 11)),127.0.0.1:$((BASE + 12)),127.0.0.1:$((BASE + 13))"
for s in 0 1; do
  A="127.0.0.1:$((BASE + 10 * s + 1))"
  B="127.0.0.1:$((BASE + 10 * s + 2))"
  Q="127.0.0.1:$((BASE + 10 * s + 3))"
  for role in alice bob qp; do
    DAEMONS+=("$(spawn "./$BUILD/tools/hprl_party" --role "$role" \
      --alice "$A" --bob "$B" --qp "$Q" --shard "$s")")
  done
done
sleep 0.5
C_ARGS=( --transport tcp --parties "$PARTIES" --net_emu_latency_micros 5000
         --hb_interval_ms 100 --journal "$TMP/c.jnl"
         --links "$TMP/links_c.csv" --metrics_out "$TMP/run_c.json" )
VICTIM=$(spawn "${LINK[@]}" "${C_ARGS[@]}")
sleep "$(ms "$C_KILL_MS")"
kill -9 "$VICTIM" 2>/dev/null || true
sleep 0.2
RESUME=()
[[ -f "$TMP/c.jnl" ]] && RESUME=( --resume )
# Same daemons, next session epoch: leftovers of the dead coordinator's
# session are fenced daemon-side, and only the remainder is drained.
"${LINK[@]}" "${C_ARGS[@]}" ${RESUME[@]+"${RESUME[@]}"} >/dev/null
assert_converged "$TMP/links_c.csv" "$TMP/run_c.json" "fleet-resume"
if [[ ${#RESUME[@]} -gt 0 ]]; then
  assert_resumed "$TMP/run_c.json" "fleet-resume"
else
  echo "   fleet-resume OK: killed pre-flush, clean restart converged"
fi
wait 2>/dev/null || true

echo "chaos OK (seed $SEED): all three crash schedules converged to the" \
  "uninterrupted links"
