#!/usr/bin/env bash
# Streaming-service smoke: a seeded 1k-delta churn stream driven through
# `hprl_link --serve` (docs/SERVICE.md). Asserts, at smoke scale, the three
# properties the subsystem promises:
#
#   - determinism: the final links of the streamed run are bit-identical to
#     an uninterrupted one-batch replay of the same stream;
#   - crash consistency: a coordinator SIGKILLed mid-stream (after the
#     journal write for delta N) and relaunched with --resume settles the
#     exact same links with zero lost or duplicated verdicts — replayed +
#     live SMC spend must equal the uninterrupted run's spend;
#   - transport independence: the same stream over a real hprl_party TCP
#     fleet (wire v6 resident tables: delta pushes + sentinel pair frames)
#     produces the same links again.
#
# It then records the sustained blocked-pairs/sec and the p99
# delta-to-verdict latency of the uninterrupted run into the `streaming`
# block of BENCH_hotpath.json:
#
#   scripts/serve_smoke.sh [build-dir]           # run + merge the block
#   scripts/serve_smoke.sh --check [build-dir]   # run, then fail if
#       throughput drops below 80% of the committed value or p99 rises
#       above 125%; the committed file is not rewritten
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi
BUILD="${1:-build}"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target hprl_link hprl_party hprl_gen churn

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"; pkill -P $$ hprl_party 2>/dev/null || true' EXIT

echo "== churn: seeded 1k-delta stream over the demo workspace =="
"./$BUILD/tools/hprl_gen" --out "$TMP/demo" --rows 400 --seed 7 >/dev/null
"./$BUILD/bench/churn" --out "$TMP/deltas.csv" --deltas 1000 --tenants 2 \
  --seed 11

echo "== uninterrupted run: the reference links + the bench numbers =="
"./$BUILD/tools/hprl_link" --spec "$TMP/demo/linkage.spec" --serve \
  --deltas "$TMP/deltas.csv" --links "$TMP/links_ref.csv" \
  --metrics_out "$TMP/run_ref.json" | tee "$TMP/ref.out"
grep '^HPRL_SERVE summary:' "$TMP/ref.out" > "$TMP/ref.summary"

echo "== crash consistency: SIGKILL after 300 settled deltas, then --resume =="
set +e
"./$BUILD/tools/hprl_link" --spec "$TMP/demo/linkage.spec" --serve \
  --deltas "$TMP/deltas.csv" --journal "$TMP/serve.jnl" \
  --serve_crash_after 300 >/dev/null 2>&1
CRASH_EXIT=$?
set -e
[[ "$CRASH_EXIT" -eq 137 ]] \
  || { echo "FAIL: crash run exited $CRASH_EXIT, expected SIGKILL (137)"; exit 1; }
"./$BUILD/tools/hprl_link" --spec "$TMP/demo/linkage.spec" --serve \
  --deltas "$TMP/deltas.csv" --journal "$TMP/serve.jnl" --resume \
  --links "$TMP/links_resumed.csv" | tee "$TMP/resumed.out"
diff "$TMP/links_ref.csv" "$TMP/links_resumed.csv" \
  || { echo "FAIL: resumed links differ from the uninterrupted run"; exit 1; }

echo "== tcp fleet: same stream across spawned hprl_party daemons =="
cp -r "$TMP/demo" "$TMP/demo_tcp"
sed -i 's/^keybits .*/keybits 256/' "$TMP/demo_tcp/linkage.spec"
"./$BUILD/tools/hprl_link" --spec "$TMP/demo_tcp/linkage.spec" --serve \
  --deltas "$TMP/deltas.csv" --links "$TMP/links_tcp.csv" \
  --transport tcp --party_bin "./$BUILD/tools/hprl_party" \
  | tee "$TMP/tcp.out"
diff "$TMP/links_ref.csv" "$TMP/links_tcp.csv" \
  || { echo "FAIL: tcp-fleet links differ from the in-process run"; exit 1; }

CHECK="$CHECK" python3 - "$TMP" <<'EOF'
import json, os, re, sys

tmp = sys.argv[1]
check = os.environ.get("CHECK") == "1"

def summary(path):
    line = open(os.path.join(tmp, path)).read()
    m = re.search(r"^HPRL_SERVE summary: (.*)$", line, re.M)
    assert m, f"no summary line in {path}"
    out = {}
    for kv in m.group(1).split():
        k, v = kv.split("=", 1)
        out[k] = float(v) if "." in v else int(v)
    return out

ref = summary("ref.out")
resumed = summary("resumed.out")
tcp = summary("tcp.out")

# Accounting: zero lost or duplicated verdicts across the crash. The resumed
# incarnation replays the journaled prefix (replayed_smc resolved from the
# journal, no SMC spend) and settles the rest live; the totals must line up
# with the uninterrupted run exactly.
assert ref["deltas"] == 1000 and ref["replayed"] == 0, ref
assert resumed["deltas"] == 1000 and resumed["replayed"] == 300, resumed
assert resumed["replayed"] + resumed["applied"] + resumed["queued"] \
    + resumed["rejected"] == 1000, resumed
assert resumed["replayed_smc"] + resumed["smc_pairs"] == ref["smc_pairs"], \
    (resumed, ref)
assert resumed["links"] == ref["links"] and tcp["links"] == ref["links"]
assert tcp["smc_pairs"] == ref["smc_pairs"], (tcp, ref)
assert resumed["epoch"] == 2, resumed
print(f"serve accounting OK: {ref['links']} links, {ref['smc_pairs']} SMC "
      f"pairs, crash replay {resumed['replayed']}+{resumed['applied']} "
      f"lost nothing, fenced epoch {resumed['epoch']}")

block = {
    "deltas": ref["deltas"],
    "links": ref["links"],
    "smc_pairs": ref["smc_pairs"],
    "sustained_pairs_per_sec": ref["pairs_per_sec"],
    "p99_delta_seconds": ref["p99_delta_seconds"],
}

if check:
    committed = json.load(open("BENCH_hotpath.json")).get("streaming")
    assert committed, "no committed streaming block in BENCH_hotpath.json"
    pps, c_pps = block["sustained_pairs_per_sec"], \
        committed["sustained_pairs_per_sec"]
    p99, c_p99 = block["p99_delta_seconds"], committed["p99_delta_seconds"]
    failures = []
    if pps < 0.8 * c_pps:
        failures.append(f"pairs/sec {pps:.0f} < 80% of committed {c_pps:.0f}")
    if p99 > 1.25 * c_p99:
        failures.append(f"p99 {p99:.6f}s > 125% of committed {c_p99:.6f}s")
    if failures:
        print("STREAMING BENCH CHECK FAILED:", *failures, sep="\n  ")
        sys.exit(1)
    print(f"streaming check OK: {pps:.0f} pairs/s (committed {c_pps:.0f}), "
          f"p99 {p99:.6f}s (committed {c_p99:.6f}s)")
else:
    # Merge, preserving every block this script does not produce.
    doc = json.load(open("BENCH_hotpath.json"))
    doc["streaming"] = block
    with open("BENCH_hotpath.json", "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(json.dumps({"streaming": block}, indent=2))
EOF

if [[ "$CHECK" == "1" ]]; then
  echo "== serve smoke OK (BENCH_hotpath.json unchanged) =="
else
  echo "== serve smoke OK: streaming block written to BENCH_hotpath.json =="
fi
