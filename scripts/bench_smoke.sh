#!/usr/bin/env bash
# Hot-path benchmark smoke run. Builds the release tree, runs the hot-path
# benches at smoke sizes and writes the before/after ratios to
# BENCH_hotpath.json at the repo root:
#   - Paillier decryption: CRT fast path vs reference lambda/mu path
#   - randomizer: fixed-base windowed table vs square-and-multiply PowMod
#   - SMC stage: batched engine (threads + CRT + randomizer pool) vs the
#     serial reference engine, on the timing-table workload
#   - packed SMC: several pairs per ciphertext on top of the fast engine
#   - offline/online: warm persisted-material online stage vs the cold
#     end-to-end stage (keygen + prewarm + compare) on the same workload
#   - blocking: memoized SlackTable sweep vs the seed's direct sweep
#   - tcp transport: measured wall clock and wire bytes of a real
#     three-daemon loopback run vs the NetworkModel(LAN) projection
#   - pipelined rpc: ctl round trips at batch 32 vs one round trip per pair
#   - sharded smc: the same linkage over a 4-shard comparator fleet vs one
#     shard, under emulated per-pair latency (the overlap sharding buys)
#   - async datapath: SocketBus bulk throughput vs raw loopback TCP moving
#     the identical checksummed wire-v6 frames (overhead budget: 2x)
#   - arena alloc: GMP allocations per packed-SMC pair, arena off vs on
#     (reduction floor: 5x)
#
#   scripts/bench_smoke.sh [build-dir]           # run + write BENCH_hotpath.json
#   scripts/bench_smoke.sh --check [build-dir]   # run, compare against the
#       committed BENCH_hotpath.json and fail if any recorded speedup drops
#       below 80% of its committed value, if the async-datapath overhead
#       ratio exceeds 2x, or if the arena allocation reduction falls below
#       5x; the committed file is not rewritten
set -euo pipefail
cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
  CHECK=1
  shift
fi
BUILD="${1:-build}"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target micro_crypto micro_blocking timing_table \
  hprl_link hprl_party hprl_gen net_throughput micro_arena

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== micro_crypto: CRT decrypt + fixed-base randomizer (1024 bit) =="
"./$BUILD/bench/micro_crypto" \
  --benchmark_filter='(BM_PaillierDecrypt(Crt|Reference)|BM_Randomizer(FixedBasePow|ReferencePowMod))/1024' \
  --benchmark_format=json --benchmark_out="$TMP/crypto.json" \
  --benchmark_out_format=json

echo "== timing_table: batched + packed SMC + cold/warm material stages =="
"./$BUILD/bench/timing_table" --rows 400 --smc-reps 3 --smc-threads 4 \
  --smc-batch 32 --smc-pack 8 --material-dir "$TMP/material" \
  --metrics_out "$TMP/timing.json"

echo "== micro_blocking: memoized sweep vs direct sweep (+ cutoff guard) =="
"./$BUILD/bench/micro_blocking" --rows 4000 --k 8 --threads 4 \
  --metrics_out "$TMP/blocking.json"

echo "== tcp transport: three-daemon loopback run, measured vs modeled =="
# Wall-clock blocks run three times; the python below keeps the best rep
# of each so a scheduler hiccup cannot fail --check spuriously.
"./$BUILD/tools/hprl_gen" --out "$TMP/tcpdata" --rows 300 --seed 7 >/dev/null
sed -i 's/^keybits .*/keybits 256/; s/^allowance .*/allowance 0.01/' \
  "$TMP/tcpdata/linkage.spec"
for rep in 1 2 3; do
  "./$BUILD/tools/hprl_link" --spec "$TMP/tcpdata/linkage.spec" \
    --r "$TMP/tcpdata/r.csv" --s "$TMP/tcpdata/s.csv" --transport tcp \
    --metrics_out "$TMP/tcp_$rep.json" >/dev/null
done

echo "== pipelined rpc: ctl round trips, per-pair vs batch 32 =="
"./$BUILD/tools/hprl_link" --spec "$TMP/tcpdata/linkage.spec" \
  --r "$TMP/tcpdata/r.csv" --s "$TMP/tcpdata/s.csv" --transport tcp \
  --rpc_batch 1 --metrics_out "$TMP/tcp_perpair.json" >/dev/null
"./$BUILD/tools/hprl_link" --spec "$TMP/tcpdata/linkage.spec" \
  --r "$TMP/tcpdata/r.csv" --s "$TMP/tcpdata/s.csv" --transport tcp \
  --rpc_batch 32 --rpc_window 4 --metrics_out "$TMP/tcp_batch32.json" \
  >/dev/null

echo "== sharded smc: 4-shard comparator fleet vs 1 shard (emulated latency) =="
# The daemons sleep 10 ms per pair (--net_emu_latency_micros), making the
# stage latency-bound: the speedup measures the coordinator overlapping the
# shards' latency windows — what sharding buys on a real network — not CPU
# core multiplication (docs/CLUSTER.md). Labels must stay bit-identical.
for rep in 1 2 3; do
  "./$BUILD/tools/hprl_link" --spec "$TMP/tcpdata/linkage.spec" \
    --r "$TMP/tcpdata/r.csv" --s "$TMP/tcpdata/s.csv" --transport tcp \
    --shards 1 --net_emu_latency_micros 10000 \
    --links "$TMP/links_shard1.csv" \
    --metrics_out "$TMP/tcp_shard1_$rep.json" >/dev/null
  "./$BUILD/tools/hprl_link" --spec "$TMP/tcpdata/linkage.spec" \
    --r "$TMP/tcpdata/r.csv" --s "$TMP/tcpdata/s.csv" --transport tcp \
    --shards 4 --net_emu_latency_micros 10000 \
    --links "$TMP/links_shard4.csv" \
    --metrics_out "$TMP/tcp_shard4_$rep.json" >/dev/null
  diff "$TMP/links_shard1.csv" "$TMP/links_shard4.csv" \
    || { echo "FAIL: 4-shard links differ from single-shard links"; exit 1; }
done

echo "== net_throughput: SocketBus vs raw TCP, identical framed traffic =="
"./$BUILD/bench/net_throughput" --msgs 128 --reps 3 \
  --out "$TMP/net_throughput.json"

echo "== micro_arena: GMP allocations per packed pair, arena off vs on =="
"./$BUILD/bench/micro_arena" --groups 10 --out "$TMP/arena.json"

CHECK="$CHECK" python3 - "$TMP" <<'EOF'
import json, sys, os

tmp = sys.argv[1]
check = os.environ.get("CHECK") == "1"

with open(os.path.join(tmp, "crypto.json")) as f:
    crypto = json.load(f)
bench_ms = {b["name"]: b["real_time"] for b in crypto["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}
crt_ms = bench_ms["BM_PaillierDecryptCrt/1024"]
ref_ms = bench_ms["BM_PaillierDecryptReference/1024"]
fb_ms = bench_ms["BM_RandomizerFixedBasePow/1024"]
powmod_ms = bench_ms["BM_RandomizerReferencePowMod/1024"]

def series(path):
    with open(os.path.join(tmp, path)) as f:
        return {row["label"]: row for row in json.load(f)["series"]}

timing = series("timing.json")
smc_serial = timing["smc_stage_serial_reference"]["smc_seconds"]
smc_fast = timing["smc_stage_fast"]["smc_seconds"]
smc_packed = timing["smc_stage_packed"]["smc_seconds"]
smc_plain_call = timing["smc_compare_plain"]["smc_seconds"]
smc_fault_call = timing["smc_compare_fault_layer"]["smc_seconds"]

blocking = series("blocking.json")
direct = blocking["direct_slack_decide"]["blocking_seconds"]
memo = blocking["memoized_1_thread"]["blocking_seconds"]
par_label = [l for l in blocking if l.startswith("memoized_") and
             l.endswith("_threads")][0]
par = blocking[par_label]["blocking_seconds"]

report = {
    "schema": "hprl-bench-hotpath/2",
    "paillier_decrypt_1024": {
        "reference_ms": ref_ms,
        "crt_ms": crt_ms,
        "speedup": ref_ms / crt_ms,
    },
    # Randomizer hot path: h_n^s through the fixed-base windowed table vs the
    # reference square-and-multiply r^n mod n². This is the per-randomizer
    # cost behind the RandomizerPool's fast refill.
    "randomizer_fixed_base_1024": {
        "reference_powmod_ms": powmod_ms,
        "fixed_base_ms": fb_ms,
        "speedup": powmod_ms / fb_ms,
    },
    "smc_stage": {
        "serial_reference_seconds": smc_serial,
        "fast_seconds": smc_fast,
        "speedup": smc_serial / smc_fast,
    },
    # Packed plaintext path (8 pairs per ciphertext) on top of the fast
    # engine, vs the serial scalar reference. fast_seconds is recorded next
    # to it so the packing delta on the already-fast engine stays visible.
    "packed_smc": {
        "serial_reference_seconds": smc_serial,
        "fast_seconds": smc_fast,
        "packed_seconds": smc_packed,
        "pack_pairs": 8,
        "speedup": smc_serial / smc_packed,
    },
    # Fault-injection layer decorating the transport at all-zero rates,
    # measured as the per-comparison latency floor on the serial protocol:
    # the overhead_fraction target on the SMC stage is < 0.03.
    "smc_stage_fault_overhead": {
        "plain_compare_seconds": smc_plain_call,
        "fault_layer_compare_seconds": smc_fault_call,
        "overhead_fraction": (smc_fault_call - smc_plain_call)
                             / smc_plain_call,
    },
    "blocking_sweep": {
        "direct_seconds": direct,
        "memoized_seconds": memo,
        "memoized_parallel_seconds": par,
        "speedup": direct / memo if memo > 0 else float("inf"),
    },
}

# Offline/online phase split: cold end-to-end SMC stage (keygen + material
# prewarm + compare, empty store) vs the warm online stage alone (persisted
# material adopted; the offline phase shrinks to a file load, reported next
# to it). Same labels both ways, asserted inside timing_table. The warm
# speedup is the acceptance criterion (>= 3x).
report["offline_online"] = {
    "cold_total_seconds": timing["material_cold_total"]["smc_seconds"],
    "warm_offline_seconds": timing["material_warm_offline"]["smc_seconds"],
    "warm_online_seconds": timing["material_warm_online"]["smc_seconds"],
    "speedup": (timing["material_cold_total"]["smc_seconds"]
                / timing["material_warm_online"]["smc_seconds"]),
}

# Real three-daemon loopback run vs the NetworkModel(LAN) projection. The
# wire/accounted ratio is the acceptance criterion (within 5%); the
# measured/estimated ratio quantifies how pessimistic the serialized-crypto
# LAN model is against a loopback deployment. Wall-clock blocks are
# best-of-3: each rep wrote its own report, keep the fastest stage.
def best_gauges(pattern):
    reps = []
    for rep in (1, 2, 3):
        with open(os.path.join(tmp, pattern % rep)) as f:
            reps.append(json.load(f)["gauges"])
    return min(reps, key=lambda g: g["net.measured_smc_seconds"])

tcp_gauges = best_gauges("tcp_%d.json")
wire = tcp_gauges["net.wire_bytes_sent"]
accounted = tcp_gauges["net.bus_accounted_bytes"]
measured_s = tcp_gauges["net.measured_smc_seconds"]
estimated_s = tcp_gauges.get("net.estimated_smc_seconds")
report["tcp_transport"] = {
    "measured_smc_seconds": measured_s,
    "estimated_smc_seconds_lan": estimated_s,
    "measured_vs_estimated": (measured_s / estimated_s
                              if estimated_s else None),
    "wire_bytes_sent": wire,
    "bus_accounted_bytes": accounted,
    "wire_vs_accounted_ratio": wire / accounted,
}

# Windowed pipelined batch RPC: the same loopback linkage with one ctl round
# trip per pair vs pairb frames of 32 pairs, 4 batches in flight. The
# reduction is the acceptance criterion (>= 8x at batch 32).
def ctl_trips(path):
    with open(os.path.join(tmp, path)) as f:
        run = json.load(f)
    return run["counters"]["net.ctl_round_trips"]

per_pair = ctl_trips("tcp_perpair.json")
batch32 = ctl_trips("tcp_batch32.json")
report["pipelined_rpc"] = {
    "ctl_round_trips_per_pair_mode": per_pair,
    "ctl_round_trips_batch32": batch32,
    "round_trip_reduction": per_pair / batch32,
}

# Comparator fleet: the same linkage over 4 shard meshes vs 1, with the
# daemons sleeping 10 ms per pair so the stage is latency-bound. The
# speedup is the SMC-stage wall-clock ratio (acceptance: >= 2.5x at 4
# shards), best-of-3 per side; links were diffed bit-identical by the
# shell above on every rep.
shard1_s = best_gauges("tcp_shard1_%d.json")["net.measured_smc_seconds"]
shard4_s = best_gauges("tcp_shard4_%d.json")["net.measured_smc_seconds"]
report["sharded_smc"] = {
    "shards": 4,
    "emulated_latency_micros": 10000,
    "smc_seconds_1_shard": shard1_s,
    "smc_seconds_4_shards": shard4_s,
    "speedup": shard1_s / shard4_s,
}

# Async datapath: the epoll SocketBus pushing bulk messages vs a blocking
# raw-TCP loop carrying the identical checksummed wire-v6 frames. Lower is
# better for the ratio; the key deliberately avoids the generic "speedup"
# name so the 80%-floor loop below never touches it — it carries its own
# guard (raw_over_bus_ratio <= 2.0).
with open(os.path.join(tmp, "net_throughput.json")) as f:
    netthru = json.load(f)
report["async_datapath"] = {
    "msg_bytes": netthru["msg_bytes"],
    "raw_mbps": netthru["raw_mbps"],
    "bus_mbps": netthru["bus_mbps"],
    "raw_over_bus_ratio": netthru["raw_over_bus_ratio"],
}

# Arena allocation audit: GMP heap allocations per packed-SMC pair, scratch
# arena off vs on, with bit-identical labels asserted by the bench itself.
# Guarded below by its own floor (reduction >= 5.0), not the generic loop.
with open(os.path.join(tmp, "arena.json")) as f:
    arena = json.load(f)
report["arena_alloc"] = {
    "allocs_per_pair_no_arena": arena["allocs_per_pair_no_arena"],
    "allocs_per_pair_arena": arena["allocs_per_pair_arena"],
    "reduction": arena["reduction"],
}

if check:
    with open("BENCH_hotpath.json") as f:
        committed = json.load(f)
    failures = []
    for block, values in committed.items():
        if not isinstance(values, dict):
            continue
        for key, committed_value in values.items():
            if key not in ("speedup", "round_trip_reduction"):
                continue
            measured = report.get(block, {}).get(key)
            if measured is None:
                failures.append(f"{block}.{key}: missing from this run")
            elif measured < 0.8 * committed_value:
                failures.append(
                    f"{block}.{key}: measured {measured:.2f} < 80% of "
                    f"committed {committed_value:.2f}")
            else:
                print(f"check OK {block}.{key}: {measured:.2f} "
                      f"(committed {committed_value:.2f})")
    # Absolute-threshold guards (not relative to the committed value):
    # the async datapath must stay within its 2x overhead budget and the
    # arena must keep at least its 5x allocation reduction.
    ratio = report["async_datapath"]["raw_over_bus_ratio"]
    if ratio > 2.0:
        failures.append(
            f"async_datapath.raw_over_bus_ratio: measured {ratio:.2f} "
            f"> 2.0 overhead budget")
    else:
        print(f"check OK async_datapath.raw_over_bus_ratio: "
              f"{ratio:.2f} (budget 2.0)")
    reduction = report["arena_alloc"]["reduction"]
    if reduction < 5.0:
        failures.append(
            f"arena_alloc.reduction: measured {reduction:.2f} "
            f"< 5.0 floor")
    else:
        print(f"check OK arena_alloc.reduction: {reduction:.2f} "
              f"(floor 5.0)")
    if failures:
        print("BENCH CHECK FAILED:", *failures, sep="\n  ")
        sys.exit(1)
    print("bench check passed: no speedup below 80% of committed")
else:
    # Merge over the committed file: blocks this script does not produce
    # (e.g. `streaming`, owned by scripts/serve_smoke.sh) are preserved.
    try:
        with open("BENCH_hotpath.json") as f:
            merged = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        merged = {}
    merged.update(report)
    with open("BENCH_hotpath.json", "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))
EOF

if [[ "$CHECK" == "1" ]]; then
  echo "== bench check OK (BENCH_hotpath.json unchanged) =="
else
  echo "== wrote BENCH_hotpath.json =="
fi
