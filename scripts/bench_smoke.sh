#!/usr/bin/env bash
# Hot-path benchmark smoke run. Builds the release tree, runs the three
# hot-path benches at smoke sizes and writes the before/after ratios to
# BENCH_hotpath.json at the repo root:
#   - Paillier decryption: CRT fast path vs reference lambda/mu path
#   - SMC stage: batched engine (threads + CRT + randomizer pool) vs the
#     serial reference engine, on the timing-table workload
#   - blocking: memoized SlackTable sweep vs the seed's direct sweep
#   - tcp transport: measured wall clock and wire bytes of a real
#     three-daemon loopback run vs the NetworkModel(LAN) projection
#
#   scripts/bench_smoke.sh [build-dir]   # default build dir: build
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j --target micro_crypto micro_blocking timing_table \
  hprl_link hprl_party hprl_gen

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== micro_crypto: Paillier decrypt, CRT vs reference (1024 bit) =="
"./$BUILD/bench/micro_crypto" \
  --benchmark_filter='BM_PaillierDecrypt(Crt|Reference)/1024' \
  --benchmark_format=json --benchmark_out="$TMP/crypto.json" \
  --benchmark_out_format=json

echo "== timing_table: batched SMC stage vs serial reference =="
"./$BUILD/bench/timing_table" --rows 400 --smc-reps 3 --smc-threads 4 \
  --smc-batch 16 --metrics_out "$TMP/timing.json"

echo "== micro_blocking: memoized sweep vs direct sweep =="
"./$BUILD/bench/micro_blocking" --rows 4000 --k 8 --threads 4 \
  --metrics_out "$TMP/blocking.json"

echo "== tcp transport: three-daemon loopback run, measured vs modeled =="
"./$BUILD/tools/hprl_gen" --out "$TMP/tcpdata" --rows 300 --seed 7 >/dev/null
sed -i 's/^keybits .*/keybits 256/; s/^allowance .*/allowance 0.01/' \
  "$TMP/tcpdata/linkage.spec"
"./$BUILD/tools/hprl_link" --spec "$TMP/tcpdata/linkage.spec" \
  --r "$TMP/tcpdata/r.csv" --s "$TMP/tcpdata/s.csv" --transport tcp \
  --metrics_out "$TMP/tcp.json" >/dev/null

python3 - "$TMP" <<'EOF'
import json, sys, os

tmp = sys.argv[1]

with open(os.path.join(tmp, "crypto.json")) as f:
    crypto = json.load(f)
bench_ms = {b["name"]: b["real_time"] for b in crypto["benchmarks"]
            if b.get("run_type", "iteration") == "iteration"}
crt_ms = bench_ms["BM_PaillierDecryptCrt/1024"]
ref_ms = bench_ms["BM_PaillierDecryptReference/1024"]

def series(path):
    with open(os.path.join(tmp, path)) as f:
        return {row["label"]: row for row in json.load(f)["series"]}

timing = series("timing.json")
smc_serial = timing["smc_stage_serial_reference"]["smc_seconds"]
smc_fast = timing["smc_stage_fast"]["smc_seconds"]
smc_plain_call = timing["smc_compare_plain"]["smc_seconds"]
smc_fault_call = timing["smc_compare_fault_layer"]["smc_seconds"]

blocking = series("blocking.json")
direct = blocking["direct_slack_decide"]["blocking_seconds"]
memo = blocking["memoized_1_thread"]["blocking_seconds"]
par_label = [l for l in blocking if l.startswith("memoized_") and
             l.endswith("_threads")][0]
par = blocking[par_label]["blocking_seconds"]

report = {
    "schema": "hprl-bench-hotpath/1",
    "paillier_decrypt_1024": {
        "reference_ms": ref_ms,
        "crt_ms": crt_ms,
        "speedup": ref_ms / crt_ms,
    },
    "smc_stage": {
        "serial_reference_seconds": smc_serial,
        "fast_seconds": smc_fast,
        "speedup": smc_serial / smc_fast,
    },
    # Fault-injection layer decorating the transport at all-zero rates,
    # measured as the per-comparison latency floor on the serial protocol:
    # the overhead_fraction target on the SMC stage is < 0.03.
    "smc_stage_fault_overhead": {
        "plain_compare_seconds": smc_plain_call,
        "fault_layer_compare_seconds": smc_fault_call,
        "overhead_fraction": (smc_fault_call - smc_plain_call)
                             / smc_plain_call,
    },
    "blocking_sweep": {
        "direct_seconds": direct,
        "memoized_seconds": memo,
        "memoized_parallel_seconds": par,
        "speedup": direct / memo if memo > 0 else float("inf"),
    },
}

# Real three-daemon loopback run vs the NetworkModel(LAN) projection. The
# wire/accounted ratio is the acceptance criterion (within 5%); the
# measured/estimated ratio quantifies how pessimistic the serialized-crypto
# LAN model is against a loopback deployment.
with open(os.path.join(tmp, "tcp.json")) as f:
    tcp_gauges = json.load(f)["gauges"]
wire = tcp_gauges["net.wire_bytes_sent"]
accounted = tcp_gauges["net.bus_accounted_bytes"]
measured_s = tcp_gauges["net.measured_smc_seconds"]
estimated_s = tcp_gauges.get("net.estimated_smc_seconds")
report["tcp_transport"] = {
    "measured_smc_seconds": measured_s,
    "estimated_smc_seconds_lan": estimated_s,
    "measured_vs_estimated": (measured_s / estimated_s
                              if estimated_s else None),
    "wire_bytes_sent": wire,
    "bus_accounted_bytes": accounted,
    "wire_vs_accounted_ratio": wire / accounted,
}
with open("BENCH_hotpath.json", "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(json.dumps(report, indent=2))
EOF

echo "== wrote BENCH_hotpath.json =="
