// hprl_party — one party daemon of the networked three-party SMC protocol.
//
//   hprl_party --role alice --alice 127.0.0.1:7101 --bob 127.0.0.1:7102
//              --qp 127.0.0.1:7103 [--shard N] [--connect_timeout_ms N]
//              [--receive_timeout_ms N] [--metrics_out party.json]
//
// The daemon hosts the real party object (the querying party's private key
// never leaves its process), joins the TCP mesh with the other two parties,
// and serves pair commands dispatched by an hprl_link coordinator running
// with --transport=tcp (see docs/PROTOCOL.md, "Wire format", and the
// deployment walkthrough in README.md). It exits on the coordinator's
// shutdown command.
//
// Each party's address flag names where THAT party listens; every daemon
// gets all three so it can dial its lower-ranked peers (bob dials alice,
// qp dials alice and bob).
//
// SIGTERM/SIGINT request a graceful drain: the serve loop exits at its next
// poll, freshly generated offline material is persisted to the material
// store, and the final metrics report is still written — so `kill <pid>`
// loses neither the counters nor the randomizers the daemon precomputed
// during idle time.
//
// Exit codes (common/exit_codes.h): 0 success, 2 configuration/usage error,
// 3 transport failure (mesh never came up, socket I/O died), 4 corrupt or
// mismatched crypto material, 1 anything else.

#include <csignal>
#include <cstdio>

#include "common/exit_codes.h"
#include "common/flags.h"
#include "net/party_service.h"
#include "obs/report.h"

using namespace hprl;

namespace {

/// "host:port" -> PeerAddress named `name`.
Result<net::PeerAddress> ParseEndpoint(const std::string& name,
                                       const std::string& spec) {
  net::PeerAddress addr;
  addr.name = name;
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return Status::InvalidArgument("endpoint must be host:port, got '" +
                                   spec + "'");
  }
  addr.host = spec.substr(0, colon);
  int port = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') {
      return Status::InvalidArgument("bad port in endpoint '" + spec + "'");
    }
    port = port * 10 + (spec[i] - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + spec + "'");
    }
  }
  addr.port = static_cast<uint16_t>(port);
  return addr;
}

/// Signal-handler target: RequestStop is a lone atomic store, so flipping
/// it from the handler is async-signal-safe.
net::PartyService* g_service = nullptr;

void OnTerm(int /*sig*/) {
  if (g_service != nullptr) g_service->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  std::string* role =
      flags.AddString("role", "", "which party to serve: alice, bob or qp");
  std::string* alice = flags.AddString(
      "alice", "127.0.0.1:7101", "alice's listen endpoint (host:port)");
  std::string* bob = flags.AddString("bob", "127.0.0.1:7102",
                                     "bob's listen endpoint (host:port)");
  std::string* qp = flags.AddString(
      "qp", "127.0.0.1:7103", "querying party's listen endpoint (host:port)");
  int64_t* shard = flags.AddInt(
      "shard", -1,
      "shard index of this replica within a comparator fleet (labeling "
      "only: the wire protocol is identical; -1 = standalone mesh)");
  int64_t* connect_timeout_ms = flags.AddInt(
      "connect_timeout_ms", 10000, "deadline for establishing the mesh");
  int64_t* receive_timeout_ms = flags.AddInt(
      "receive_timeout_ms", 4000,
      "blocking-receive bound; expiry surfaces as a retryable NotFound");
  std::string* metrics_out = flags.AddString(
      "metrics_out", "", "write this party's JSON run report here on exit");

  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kNotFound) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (*role != "alice" && *role != "bob" && *role != "qp") {
    std::fprintf(stderr, "--role must be alice, bob or qp\n%s",
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (*connect_timeout_ms <= 0 || *receive_timeout_ms <= 0) {
    std::fprintf(stderr, "timeouts must be positive\n");
    return 2;
  }

  net::PartyServiceOptions opts;
  opts.role = *role;
  for (auto [name, spec] : {std::pair<const char*, std::string*>{"alice", alice},
                            {"bob", bob},
                            {"qp", qp}}) {
    auto addr = ParseEndpoint(name, *spec);
    if (!addr.ok()) {
      std::fprintf(stderr, "--%s: %s\n", name,
                   addr.status().ToString().c_str());
      return 2;
    }
    if (opts.role == name && addr->host != "0.0.0.0" &&
        addr->host != "127.0.0.1" && addr->host != "localhost") {
      // The daemon binds INADDR_ANY; the host part of its own endpoint is
      // what the peers dial. Nothing to validate here.
    }
    if (std::string(name) == "alice") opts.endpoints.alice = *addr;
    if (std::string(name) == "bob") opts.endpoints.bob = *addr;
    if (std::string(name) == "qp") opts.endpoints.qp = *addr;
  }
  opts.connect_timeout_ms = static_cast<int>(*connect_timeout_ms);
  opts.receive_timeout_ms = static_cast<int>(*receive_timeout_ms);

  obs::MetricsRegistry registry;
  if (!metrics_out->empty()) opts.metrics = &registry;

  net::PartyService service(opts);
  Status started = service.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "hprl_party %s: %s\n", role->c_str(),
                 started.ToString().c_str());
    return ExitCodeForStatus(started);
  }
  if (*shard >= 0) {
    std::printf("hprl_party %s#%lld: mesh up, listening on port %u\n",
                role->c_str(), static_cast<long long>(*shard),
                unsigned{service.bus().listen_port()});
  } else {
    std::printf("hprl_party %s: mesh up, listening on port %u\n",
                role->c_str(), unsigned{service.bus().listen_port()});
  }
  // Machine-parsable port announcement: with `--<role> host:0` the kernel
  // assigns the port, and a supervisor scripting the fleet scrapes this line
  // (grep ^HPRL_PARTY_PORT=) instead of parsing the human text above.
  std::printf("HPRL_PARTY_PORT=%u\n", unsigned{service.bus().listen_port()});
  std::fflush(stdout);

  g_service = &service;
  std::signal(SIGTERM, OnTerm);
  std::signal(SIGINT, OnTerm);

  Status served = service.Serve();

  // Graceful drain: whatever randomizer material the pool generated since
  // the last save survives the shutdown (no-op when nothing is dirty).
  service.PersistMaterial();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_service = nullptr;

  net::SocketBus::NetStats net = service.bus().net_stats();
  std::printf(
      "hprl_party %s: served %lld pairs, sent %lld bytes / received %lld "
      "bytes on %lld connections (%lld reconnects)\n",
      role->c_str(), static_cast<long long>(service.costs().invocations),
      static_cast<long long>(net.bytes_sent),
      static_cast<long long>(net.bytes_received),
      static_cast<long long>(net.connects),
      static_cast<long long>(net.reconnects));

  if (!metrics_out->empty()) {
    obs::RunReport run;
    run.tool = "hprl_party";
    run.AddConfig("role", *role);
    if (*shard >= 0) {
      run.AddConfig("shard", std::to_string(*shard));
    }
    run.registry = &registry;
    Status wrote = obs::WriteRunReport(run, *metrics_out);
    if (!wrote.ok()) {
      std::fprintf(stderr, "hprl_party %s: %s\n", role->c_str(),
                   wrote.ToString().c_str());
    }
  }
  if (!served.ok()) {
    std::fprintf(stderr, "hprl_party %s: %s\n", role->c_str(),
                 served.ToString().c_str());
    return ExitCodeForStatus(served);
  }
  return 0;
}
