// hprl_link — run hybrid private record linkage over two CSV files.
//
//   hprl_link --spec linkage.spec --r holder_a.csv --s holder_b.csv
//             [--links links.csv] [--release-r ra.txt] [--release-s rb.txt]
//             [--with-rows] [--evaluate] [--metrics_out run.json]
//             [--threads N] [--smc_threads N]
//             [--smc_pack N] [--smc_pack_slot_bits N]
//             [--smc_seed N] [--material_dir DIR] [--offline_pairs N]
//             [--offline]
//             [--rpc_batch N] [--rpc_window N] [--shards N]
//             [--checkpoint drain.json]
//             [--journal session.jnl] [--resume]
//             [--hb_interval_ms N] [--suspect_misses N] [--dead_misses N]
//             [--fault_seed N] [--fault_drop R] [--fault_corrupt R]
//             [--fault_delay R] [--fault_delay_micros N] [--fault_crash R]
//             [--transport tcp] [--parties a:p,b:p,q:p] [--party_bin PATH]
//             [--net_connect_timeout_ms N] [--net_receive_timeout_ms N]
//
// Streaming mode (docs/SERVICE.md):
//
//   hprl_link --spec linkage.spec --serve --deltas stream.csv
//             [--links links.csv] [--metrics_out run.json]
//             [--journal serve.jnl] [--resume]
//             [--tenant_allowance N] [--serve_queue N] [--serve_gen_level N]
//             [--serve_crash_after N]
//             [--transport tcp] [--parties ...] [--shards N] ...
//
// --serve replaces the two batch CSVs with one delta stream: every line is
// an insert/update/delete for one tenant's R or S side, applied in order
// through the long-lived incremental linkage service with per-tenant SMC
// allowance admission control.
//
// The spec file declares attributes, hierarchies, thresholds and protocol
// parameters (see src/cli/spec.h for the format). With `keybits > 0` in the
// spec, the SMC step runs the real three-party Paillier protocol — in
// process by default, or across hprl_party daemons with --transport=tcp
// (spawned locally, or joined via --parties; see README.md for the
// three-terminal walkthrough).
//
// Exit codes (common/exit_codes.h): 0 success, 2 configuration/usage error,
// 3 transport failure, 4 corrupt or mismatched persistent artifact
// (material store / checkpoint / session journal), 1 anything else.

#include <cmath>
#include <cstdio>
#include <string>

#include "cli/runner.h"
#include "cli/serve_runner.h"
#include "common/exit_codes.h"
#include "common/flags.h"

using namespace hprl;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string* spec_path = flags.AddString("spec", "", "linkage spec file");
  std::string* csv_r = flags.AddString("r", "", "first data holder's CSV");
  std::string* csv_s = flags.AddString("s", "", "second data holder's CSV");
  std::string* links = flags.AddString("links", "", "write matched pairs here");
  std::string* rel_r = flags.AddString("release-r", "", "write R's release");
  std::string* rel_s = flags.AddString("release-s", "", "write S's release");
  bool* with_rows =
      flags.AddBool("with-rows", false, "keep row ids in written releases");
  bool* evaluate = flags.AddBool(
      "evaluate", false, "compute ground-truth recall (reads cleartext)");
  std::string* metrics_out = flags.AddString(
      "metrics_out", "", "write a JSON run report (spans, counters) here");
  int64_t* threads = flags.AddInt(
      "threads", 0, "blocking worker threads (0 = use the spec's setting)");
  int64_t* smc_threads = flags.AddInt(
      "smc_threads", 0,
      "SMC worker comparators (0 = use the spec's setting; both default to "
      "the machine's hardware concurrency)");
  int64_t* smc_pack = flags.AddInt(
      "smc_pack", -1,
      "pairs per packed SMC exchange (0 = scalar; -1 = use the spec's)");
  int64_t* smc_pack_slot_bits = flags.AddInt(
      "smc_pack_slot_bits", -1,
      "bit width of one packed slot (-1 = use the spec's)");
  int64_t* smc_seed = flags.AddInt(
      "smc_seed", -1,
      "pinned keypair/protocol seed; 0 = OS entropy, -1 = use the spec's. "
      "The material store only hits across runs at a pinned seed");
  std::string* material_dir = flags.AddString(
      "material_dir", "",
      "persistent offline crypto material store directory (fixed-base "
      "tables + pre-encrypted randomizers; \"\" = use the spec's)");
  int64_t* offline_pairs = flags.AddInt(
      "offline_pairs", -1,
      "offline phase sizing in expected record pairs (-1 = use the spec's)");
  bool* offline = flags.AddBool(
      "offline", false,
      "run only the offline phase: generate + persist material, then exit");
  bool* pin_cores = flags.AddBool(
      "pin_cores", false,
      "pin spawned SMC worker threads to cores round-robin (NUMA-friendly "
      "scratch locality; links are identical either way)");
  bool* no_arena = flags.AddBool(
      "no_arena", false,
      "disable the packed exchange's BigInt scratch arena (the per-op "
      "allocation baseline for benches; links are identical either way)");
  int64_t* rpc_batch = flags.AddInt(
      "rpc_batch", 0,
      "tcp: pairs per ctl batch frame (1 = per-pair; 0 = use the spec's)");
  int64_t* rpc_window = flags.AddInt(
      "rpc_window", 0,
      "tcp: batches kept in flight per shard (0 = use the spec's)");
  int64_t* shards = flags.AddInt(
      "shards", 0,
      "tcp: comparator shard meshes per fleet (0 = use the spec's)");
  int64_t* net_emu_latency = flags.AddInt(
      "net_emu_latency_micros", 0,
      "tcp bench knob: per-pair daemon-side sleep, making the SMC stage "
      "latency-bound so shard scaling measures overlap (0 = off)");
  std::string* checkpoint = flags.AddString(
      "checkpoint", "",
      "resumable SMC drain: persist progress here after every batch and "
      "resume from it on restart");
  std::string* journal = flags.AddString(
      "journal", "",
      "crash-consistent session journal: record per-shard batch "
      "dispositions here after every batch; a relaunched coordinator "
      "resumes the drain from it at a fenced session epoch");
  bool* resume = flags.AddBool(
      "resume", false,
      "require the --journal file to exist and verify; a missing or "
      "corrupt journal fails the run instead of silently starting over");
  double* hb_interval_ms = flags.AddDouble(
      "hb_interval_ms", 0,
      "tcp: membership heartbeat cadence in milliseconds (0 = the spec's)");
  int64_t* suspect_misses = flags.AddInt(
      "suspect_misses", 0,
      "tcp: consecutive missed probes before a replica turns suspect "
      "(0 = the spec's)");
  int64_t* dead_misses = flags.AddInt(
      "dead_misses", 0,
      "tcp: consecutive missed probes before a replica is declared dead; "
      "must exceed suspect_misses (0 = the spec's)");
  int64_t* fault_seed = flags.AddInt(
      "fault_seed", 0, "fault-injection schedule seed (0 = use the spec's)");
  double* fault_drop = flags.AddDouble(
      "fault_drop", -1, "message drop rate in [0,1] (-1 = use the spec's)");
  double* fault_corrupt = flags.AddDouble(
      "fault_corrupt", -1,
      "payload corruption rate in [0,1] (-1 = use the spec's)");
  double* fault_delay = flags.AddDouble(
      "fault_delay", -1, "message delay rate in [0,1] (-1 = use the spec's)");
  int64_t* fault_delay_micros = flags.AddInt(
      "fault_delay_micros", -1,
      "injected latency per delayed message (-1 = use the spec's)");
  double* fault_crash = flags.AddDouble(
      "fault_crash", -1,
      "party crash rate per receive in [0,1] (-1 = use the spec's)");
  std::string* transport = flags.AddString(
      "transport", "inproc",
      "SMC transport: inproc, or tcp to run the parties as hprl_party "
      "daemons over real sockets");
  std::string* parties = flags.AddString(
      "parties", "",
      "tcp: alice,bob,qp listen endpoints (host:port,host:port,host:port) "
      "of an already-running mesh — one triple per shard, ';' between "
      "shards; empty = spawn local daemons");
  std::string* party_bin = flags.AddString(
      "party_bin", "",
      "tcp spawn mode: hprl_party binary (default: next to this binary)");
  int64_t* net_connect_timeout_ms = flags.AddInt(
      "net_connect_timeout_ms", 10000,
      "tcp: deadline for establishing the three-party mesh");
  int64_t* net_receive_timeout_ms = flags.AddInt(
      "net_receive_timeout_ms", 4000,
      "tcp: blocking-receive bound per protocol link");
  bool* serve = flags.AddBool(
      "serve", false,
      "streaming mode: apply a --deltas stream through the incremental "
      "linkage service instead of batch-linking --r against --s");
  std::string* deltas = flags.AddString(
      "deltas", "",
      "serve: delta stream CSV (op,tenant,side,row_id,<attr columns>)");
  int64_t* tenant_allowance = flags.AddInt(
      "tenant_allowance", -1,
      "serve: per-tenant SMC allowance in pairs (-1 = the spec's "
      "serve_allowance)");
  int64_t* serve_queue = flags.AddInt(
      "serve_queue", -1,
      "serve: queued deltas per tenant, 0 rejects instead (-1 = the "
      "spec's serve_queue)");
  int64_t* serve_gen_level = flags.AddInt(
      "serve_gen_level", -1,
      "serve: VGH levels lifted above the leaves (-1 = the spec's "
      "serve_gen_level)");
  int64_t* serve_crash_after = flags.AddInt(
      "serve_crash_after", 0,
      "serve crash-injection test hook: SIGKILL after N newly settled "
      "deltas, after the journal write (0 = off)");

  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kNotFound) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (*serve) {
    if (spec_path->empty() || deltas->empty()) {
      std::fprintf(stderr, "--serve requires --spec and --deltas\n%s",
                   flags.Usage(argv[0]).c_str());
      return kExitConfig;
    }
    if (!csv_r->empty() || !csv_s->empty()) {
      std::fprintf(stderr,
                   "--serve takes a --deltas stream, not --r/--s batches\n");
      return kExitConfig;
    }
  } else if (spec_path->empty() || csv_r->empty() || csv_s->empty()) {
    std::fprintf(stderr, "--spec, --r and --s are required\n%s",
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (*serve_crash_after < 0) {
    std::fprintf(stderr, "--serve_crash_after must be >= 0\n");
    return kExitConfig;
  }
  if (*threads < 0 || *smc_threads < 0) {
    std::fprintf(stderr,
                 "--threads and --smc_threads must be >= 0 (0 = spec/auto)\n");
    return 2;
  }
  for (double rate : {*fault_drop, *fault_corrupt, *fault_delay,
                      *fault_crash}) {
    if (rate > 1 || (rate < 0 && rate != -1)) {
      std::fprintf(stderr,
                   "fault rates must be in [0,1] (-1 = use the spec's)\n");
      return kExitConfig;
    }
  }
  // std::isfinite, like the fault knobs: a NaN waves through any plain
  // comparison chain, and "--hb_interval_ms=nan" parses.
  if (!std::isfinite(*hb_interval_ms) || *hb_interval_ms < 0) {
    std::fprintf(stderr,
                 "--hb_interval_ms must be a finite non-negative "
                 "millisecond count (0 = use the spec's)\n");
    return kExitConfig;
  }
  if (*suspect_misses < 0 || *dead_misses < 0) {
    std::fprintf(stderr,
                 "--suspect_misses and --dead_misses must be >= 0 "
                 "(0 = use the spec's)\n");
    return kExitConfig;
  }
  if (*resume && journal->empty()) {
    std::fprintf(stderr, "--resume requires --journal=<path>\n");
    return kExitConfig;
  }

  auto spec = cli::LoadLinkageSpec(*spec_path);
  if (!spec.ok()) {
    // Unreadable or malformed spec is a configuration error regardless of
    // the underlying status code (IOError here means the file, not a wire).
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return kExitConfig;
  }
  cli::RunnerOptions options;
  options.links_out = *links;
  options.release_r_out = *rel_r;
  options.release_s_out = *rel_s;
  options.publish_releases = !*with_rows;
  options.evaluate = *evaluate;
  options.metrics_out = *metrics_out;
  options.threads_override = static_cast<int>(*threads);
  options.smc_threads_override = static_cast<int>(*smc_threads);
  options.smc_pack_override = static_cast<int>(*smc_pack);
  options.smc_pack_slot_bits_override = static_cast<int>(*smc_pack_slot_bits);
  options.rpc_batch_override = static_cast<int>(*rpc_batch);
  options.rpc_window_override = static_cast<int>(*rpc_window);
  options.smc_seed_override = *smc_seed;
  options.material_dir_override = *material_dir;
  options.offline_pairs_override = static_cast<int>(*offline_pairs);
  options.offline_only = *offline;
  options.pin_cores = *pin_cores;
  options.use_arena = !*no_arena;
  if (*shards < 0 || *net_emu_latency < 0) {
    std::fprintf(stderr,
                 "--shards and --net_emu_latency_micros must be >= 0\n");
    return 2;
  }
  options.shards_override = static_cast<int>(*shards);
  options.net_emu_latency_micros = static_cast<uint32_t>(*net_emu_latency);
  options.checkpoint = *checkpoint;
  options.journal = *journal;
  options.resume = *resume;
  options.hb_interval_override = static_cast<int>(*hb_interval_ms);
  options.suspect_misses_override = static_cast<int>(*suspect_misses);
  options.dead_misses_override = static_cast<int>(*dead_misses);
  options.fault_seed_override = *fault_seed;
  options.fault_drop_override = *fault_drop;
  options.fault_corrupt_override = *fault_corrupt;
  options.fault_delay_override = *fault_delay;
  options.fault_delay_micros_override = *fault_delay_micros;
  options.fault_crash_override = *fault_crash;
  options.transport = (*transport == "inproc") ? "" : *transport;
  options.tcp_endpoints = *parties;
  if (*net_connect_timeout_ms <= 0 || *net_receive_timeout_ms <= 0) {
    std::fprintf(stderr, "net timeouts must be positive\n");
    return 2;
  }
  options.net_connect_timeout_ms = static_cast<int>(*net_connect_timeout_ms);
  options.net_receive_timeout_ms = static_cast<int>(*net_receive_timeout_ms);
  if (!party_bin->empty()) {
    options.party_binary = *party_bin;
  } else {
    // Default to the hprl_party that was built alongside this binary,
    // falling back to PATH lookup when argv[0] carries no directory.
    std::string self = argv[0];
    size_t slash = self.rfind('/');
    options.party_binary = slash == std::string::npos
                               ? "hprl_party"
                               : self.substr(0, slash + 1) + "hprl_party";
  }

  if (*serve) {
    cli::ServeRunnerOptions sopts;
    sopts.links_out = *links;
    sopts.metrics_out = *metrics_out;
    sopts.journal = *journal;
    sopts.resume = *resume;
    sopts.tenant_allowance_override = *tenant_allowance;
    sopts.max_queued_override = *serve_queue;
    sopts.gen_level_override = static_cast<int>(*serve_gen_level);
    sopts.crash_after = *serve_crash_after;
    sopts.transport = options.transport;
    sopts.tcp_endpoints = options.tcp_endpoints;
    sopts.party_binary = options.party_binary;
    sopts.shards_override = options.shards_override;
    sopts.smc_threads_override = options.smc_threads_override;
    sopts.net_connect_timeout_ms = options.net_connect_timeout_ms;
    sopts.net_receive_timeout_ms = options.net_receive_timeout_ms;
    auto serve_report = cli::RunServeFromFiles(*spec, *deltas, sopts);
    if (!serve_report.ok()) {
      std::fprintf(stderr, "%s\n", serve_report.status().ToString().c_str());
      return ExitCodeForStatus(serve_report.status());
    }
    std::fputs(serve_report->ToString().c_str(), stdout);
    return 0;
  }

  auto report = cli::RunLinkageFromFiles(*spec, *csv_r, *csv_s, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return ExitCodeForStatus(report.status());
  }
  if (report->offline_only) {
    std::printf("offline phase complete (%s oracle): %.3fs, material ready\n",
                report->oracle.c_str(), report->result.offline_seconds);
    return 0;
  }
  std::fputs(report->ToString().c_str(), stdout);
  return 0;
}
