// hprl_gen — materialize a ready-to-run demo workspace for hprl_link:
// two overlapping Adult-like CSVs, the VGH files, and a linkage spec.
//
//   hprl_gen --out demo --rows 3000 [--seed 7]
//   hprl_link --spec demo/linkage.spec --r demo/r.csv --s demo/s.csv --evaluate
//
// Exit codes follow the shared taxonomy (common/exit_codes.h): 0 success,
// 2 configuration/usage error, 3 unwritable output, 1 anything else.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "adult/adult.h"
#include "common/exit_codes.h"
#include "common/flags.h"
#include "data/csv.h"
#include "data/partition.h"
#include "hierarchy/vgh_parser.h"

using namespace hprl;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string* out_dir = flags.AddString("out", "hprl-demo", "output directory");
  int64_t* rows = flags.AddInt("rows", 3000, "source rows before the split");
  int64_t* seed = flags.AddInt("seed", 7, "generator seed");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kNotFound) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return kExitConfig;
  }
  if (*rows < 1) {
    std::fprintf(stderr, "--rows must be >= 1\n");
    return kExitConfig;
  }

  std::filesystem::path dir(*out_dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return kExitTransport;  // unwritable output location, like an IOError
  }

  auto h = adult::BuildAdultHierarchies();
  Table source = adult::GenerateAdult(*rows, static_cast<uint64_t>(*seed), h);
  Rng rng(static_cast<uint64_t>(*seed) ^ 0xD1D2D3ULL);
  auto split = SplitForLinkage(source, rng);
  if (!split.ok()) {
    std::fprintf(stderr, "%s\n", split.status().ToString().c_str());
    return ExitCodeForStatus(split.status());
  }
  if (auto s = WriteCsv(split->d1, (dir / "r.csv").string()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return ExitCodeForStatus(s);
  }
  if (auto s = WriteCsv(split->d2, (dir / "s.csv").string()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return ExitCodeForStatus(s);
  }

  for (const char* name :
       {"workclass", "education", "marital-status", "occupation"}) {
    std::ofstream out(dir / (std::string(name) + ".vgh"));
    out << FormatCategoricalVgh(*h.ByName(name));
  }
  {
    std::ofstream spec(dir / "linkage.spec");
    spec << "# hybrid private record linkage demo (paper defaults)\n"
         << "attr age numeric equiwidth 16 8 3,2,2 theta 0.05\n"
         << "attr workclass categorical vghfile workclass.vgh theta 0.05\n"
         << "attr education categorical vghfile education.vgh theta 0.05\n"
         << "attr marital-status categorical vghfile marital-status.vgh "
            "theta 0.05\n"
         << "attr occupation categorical vghfile occupation.vgh theta 0.05\n"
         << "class income\n"
         << "k 32\n"
         << "allowance 0.015\n"
         << "heuristic MinAvgFirst\n"
         << "anonymizer MaxEntropy\n"
         << "keybits 0    # set to 1024 for the real Paillier oracle\n";
  }
  std::printf("wrote %s/{r.csv,s.csv,*.vgh,linkage.spec} "
              "(%lld + %lld rows, %lld shared)\n",
              dir.c_str(), static_cast<long long>(split->d1.num_rows()),
              static_cast<long long>(split->d2.num_rows()),
              static_cast<long long>(split->shared_count));
  std::printf("next: hprl_link --spec %s/linkage.spec --r %s/r.csv --s "
              "%s/s.csv --evaluate\n",
              dir.c_str(), dir.c_str(), dir.c_str());
  return 0;
}
