// Cross-module property tests: randomized invariants that tie the
// anonymizers, the slack decision rule, the heuristics and the crypto layer
// together. These are the guarantees the paper's correctness argument rests
// on (blocking soundness above all: an M or N label must hold for EVERY
// concrete record pair consistent with the generalizations).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "anon/release_io.h"
#include "core/blocking.h"
#include "core/experiment.h"
#include "core/heuristics.h"
#include "crypto/paillier.h"
#include "linkage/expected.h"
#include "linkage/ground_truth.h"

namespace hprl {
namespace {

const ExperimentData& PropData() {
  static const ExperimentData* data = [] {
    auto d = PrepareAdultData(750, 99);
    EXPECT_TRUE(d.ok());
    return new ExperimentData(std::move(d).value());
  }();
  return *data;
}

Result<MatchRule> PropRule(double theta = 0.05, int qids = 5) {
  const auto& data = PropData();
  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(data.hierarchies.ByName(n));
  }
  return MakeUniformRule(data.schema, adult::AdultQidNames(), vghs, qids,
                         theta);
}

// ------------------------------------------------------ blocking soundness

struct SoundnessParam {
  std::string method;
  int64_t k;
  double theta;
};

class BlockingSoundnessTest : public ::testing::TestWithParam<SoundnessParam> {
};

TEST_P(BlockingSoundnessTest, LabelsHoldForEveryConcretePair) {
  const auto& data = PropData();
  auto cfg = MakeAdultAnonConfig(data, 5, GetParam().k);
  ASSERT_TRUE(cfg.ok());
  auto anonymizer = MakeAnonymizerByName(GetParam().method, *cfg);
  ASSERT_TRUE(anonymizer.ok());
  auto anon_r = (*anonymizer)->Anonymize(data.split.d1);
  auto anon_s = (*anonymizer)->Anonymize(data.split.d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());
  auto rule = PropRule(GetParam().theta);
  ASSERT_TRUE(rule.ok());

  // Re-derive labels group pair by group pair and verify against plaintext,
  // with a work cap per label so the test stays fast.
  int64_t checked_m = 0, checked_n = 0;
  constexpr int64_t kCap = 60000;
  for (const auto& gr : anon_r->groups) {
    for (const auto& gs : anon_s->groups) {
      PairLabel label = SlackDecide(gr.seq, gs.seq, *rule);
      if (label == PairLabel::kUnknown) continue;
      int64_t* counter = label == PairLabel::kMatch ? &checked_m : &checked_n;
      if (*counter > kCap) continue;
      for (int64_t rr : gr.rows) {
        for (int64_t sr : gs.rows) {
          bool matches =
              RecordsMatch(data.split.d1.row(rr), data.split.d2.row(sr), *rule);
          if (label == PairLabel::kMatch) {
            ASSERT_TRUE(matches) << GetParam().method;
          } else {
            ASSERT_FALSE(matches) << GetParam().method;
          }
          ++*counter;
        }
      }
    }
  }
  EXPECT_GT(checked_n, 0);  // mismatches must exist at these settings
}

INSTANTIATE_TEST_SUITE_P(
    MethodsKsThetas, BlockingSoundnessTest,
    ::testing::Values(SoundnessParam{"MaxEntropy", 4, 0.05},
                      SoundnessParam{"MaxEntropy", 32, 0.05},
                      SoundnessParam{"MaxEntropy", 4, 0.10},
                      SoundnessParam{"DataFly", 16, 0.05},
                      SoundnessParam{"Mondrian", 8, 0.05},
                      SoundnessParam{"Incognito", 16, 0.05},
                      SoundnessParam{"TDS", 16, 0.05}),
    [](const ::testing::TestParamInfo<SoundnessParam>& info) {
      return info.param.method + "_k" + std::to_string(info.param.k) + "_t" +
             std::to_string(static_cast<int>(info.param.theta * 100));
    });

// --------------------------------------------- expected distance bracketing

TEST(ExpectedDistanceProperty, LiesWithinSlackBoundsForCategoricals) {
  Rng rng(5);
  AttrRule rule;
  rule.type = AttrType::kCategorical;
  for (int trial = 0; trial < 500; ++trial) {
    int32_t lo1 = static_cast<int32_t>(rng.NextBounded(20));
    int32_t hi1 = lo1 + 1 + static_cast<int32_t>(rng.NextBounded(10));
    int32_t lo2 = static_cast<int32_t>(rng.NextBounded(20));
    int32_t hi2 = lo2 + 1 + static_cast<int32_t>(rng.NextBounded(10));
    GenValue v = GenValue::CategoryRange(lo1, hi1);
    GenValue w = GenValue::CategoryRange(lo2, hi2);
    SlackBounds sb = AttrSlack(v, w, rule);
    double ed = ExpectedAttrDistance(v, w, rule);
    EXPECT_GE(ed, sb.inf - 1e-12);
    EXPECT_LE(ed, sb.sup + 1e-12);
  }
}

TEST(ExpectedDistanceProperty, SquaredExpectationBracketsForNumerics) {
  Rng rng(6);
  AttrRule rule;
  rule.type = AttrType::kNumeric;
  rule.norm = 100;
  for (int trial = 0; trial < 500; ++trial) {
    double a1 = rng.NextDouble(0, 80), b1 = a1 + rng.NextDouble(0, 20);
    double a2 = rng.NextDouble(0, 80), b2 = a2 + rng.NextDouble(0, 20);
    GenValue v = GenValue::NumericInterval(a1, b1);
    GenValue w = GenValue::NumericInterval(a2, b2);
    SlackBounds sb = AttrSlack(v, w, rule);
    double ed = ExpectedAttrDistance(v, w, rule);  // E[(normalized d)^2]
    EXPECT_GE(ed, sb.inf * sb.inf - 1e-12);
    EXPECT_LE(ed, sb.sup * sb.sup + 1e-12);
  }
}

// ------------------------------------------------------- heuristic ordering

TEST(HeuristicProperty, OrderIsMonotoneInItsKey) {
  const auto& data = PropData();
  auto cfg = MakeAdultAnonConfig(data, 5, 16);
  ASSERT_TRUE(cfg.ok());
  auto anon_r = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  auto anon_s = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());
  auto rule = PropRule();
  ASSERT_TRUE(rule.ok());
  auto blocking = RunBlocking(*anon_r, *anon_s, *rule);
  ASSERT_TRUE(blocking.ok());
  ASSERT_GT(blocking->unknown.size(), 1u);

  Rng rng(1);
  for (SelectionHeuristic h :
       {SelectionHeuristic::kMinFirst, SelectionHeuristic::kMaxLast,
        SelectionHeuristic::kMinAvgFirst}) {
    auto order =
        OrderUnknownPairs(*blocking, *anon_r, *anon_s, *rule, h, rng);
    double prev = -1;
    for (size_t idx : order) {
      const SequencePair& sp = blocking->unknown[idx];
      auto ed = ExpectedDistances(anon_r->groups[sp.group_r].seq,
                                  anon_s->groups[sp.group_s].seq, *rule);
      double key = 0;
      switch (h) {
        case SelectionHeuristic::kMinFirst:
          key = *std::min_element(ed.begin(), ed.end());
          break;
        case SelectionHeuristic::kMaxLast:
          key = *std::max_element(ed.begin(), ed.end());
          break;
        default:
          key = std::accumulate(ed.begin(), ed.end(), 0.0) / ed.size();
      }
      EXPECT_GE(key, prev - 1e-12) << HeuristicName(h);
      prev = key;
    }
  }
}

// ----------------------------------------------------- release round trips

class ReleaseRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ReleaseRoundTripTest, EveryAnonymizerSurvivesSerialization) {
  const auto& data = PropData();
  auto cfg = MakeAdultAnonConfig(data, 5, 16);
  ASSERT_TRUE(cfg.ok());
  auto anonymizer = MakeAnonymizerByName(GetParam(), *cfg);
  ASSERT_TRUE(anonymizer.ok());
  auto anon = (*anonymizer)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());
  auto back = ParseRelease(FormatRelease(*anon, true));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->groups.size(), anon->groups.size());
  for (size_t i = 0; i < anon->groups.size(); ++i) {
    EXPECT_EQ(back->groups[i].seq, anon->groups[i].seq);
    EXPECT_EQ(back->groups[i].rows, anon->groups[i].rows);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, ReleaseRoundTripTest,
                         ::testing::Values("MaxEntropy", "TDS", "DataFly",
                                           "Mondrian", "Incognito"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// --------------------------------------------------------- crypto sweeps

class PaillierSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PaillierSweepTest, HomomorphismsHoldForRandomPlaintexts) {
  crypto::SecureRandom keyrng(static_cast<uint64_t>(GetParam()));
  auto kp = crypto::GeneratePaillierKeyPair(GetParam(), keyrng);
  ASSERT_TRUE(kp.ok());
  crypto::SecureRandom rng(4711);
  Rng values(static_cast<uint64_t>(GetParam()) * 31 + 1);
  for (int trial = 0; trial < 12; ++trial) {
    int64_t a = values.NextInt(-1000000, 1000000);
    int64_t b = values.NextInt(-1000000, 1000000);
    int64_t s = values.NextInt(-50, 50);
    auto ca = kp->pub.EncryptSigned(crypto::BigInt(a), rng);
    auto cb = kp->pub.EncryptSigned(crypto::BigInt(b), rng);
    ASSERT_TRUE(ca.ok() && cb.ok());
    auto sum = kp->priv.DecryptSigned(kp->pub.Add(*ca, *cb));
    ASSERT_TRUE(sum.ok());
    EXPECT_EQ(*sum, crypto::BigInt(a + b));
    auto scaled =
        kp->priv.DecryptSigned(kp->pub.ScalarMul(*ca, crypto::BigInt(s)));
    ASSERT_TRUE(scaled.ok());
    EXPECT_EQ(*scaled, crypto::BigInt(a * s));
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, PaillierSweepTest,
                         ::testing::Values(128, 256, 512),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "bits" + std::to_string(info.param);
                         });

// ----------------------------------------------- ground truth invariances

TEST(GroundTruthProperty, MatchesAreMonotoneInTheta) {
  const auto& data = PropData();
  int64_t prev = -1;
  for (double theta : {0.0, 0.02, 0.05, 0.1, 0.5}) {
    auto rule = PropRule(theta);
    ASSERT_TRUE(rule.ok());
    auto n = CountMatchingPairs(data.split.d1, data.split.d2, *rule);
    ASSERT_TRUE(n.ok());
    EXPECT_GE(*n, prev);
    prev = *n;
  }
}

TEST(GroundTruthProperty, MatchesAreAntitoneInQidCount) {
  // Adding attributes to the conjunction can only remove matches.
  const auto& data = PropData();
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (int qids = 1; qids <= 8; ++qids) {
    auto rule = PropRule(0.05, qids);
    ASSERT_TRUE(rule.ok());
    auto n = CountMatchingPairs(data.split.d1, data.split.d2, *rule);
    ASSERT_TRUE(n.ok());
    EXPECT_LE(*n, prev) << qids;
    prev = *n;
  }
  // The shared d3 block survives even the full conjunction.
  EXPECT_GE(prev, data.split.shared_count);
}

// --------------------------------------------- randomized pipeline sweep

/// Fuzz-flavored end-to-end invariants: random hierarchies, random tables,
/// random parameters — the pipeline must keep its accounting identities and
/// 100% precision regardless.
class RandomPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPipelineTest, InvariantsHoldOnRandomWorlds) {
  Rng rng(GetParam());

  // Random categorical hierarchy: 2-4 branches, 2-4 leaves each.
  VghBuilder b(Vgh::Kind::kCategorical);
  int any = b.AddRoot("ANY");
  int branches = static_cast<int>(rng.NextInt(2, 4));
  for (int bi = 0; bi < branches; ++bi) {
    int mid = b.AddChild(any, "b" + std::to_string(bi));
    int leaves = static_cast<int>(rng.NextInt(2, 4));
    for (int li = 0; li < leaves; ++li) {
      b.AddChild(mid, "l" + std::to_string(bi) + "_" + std::to_string(li));
    }
  }
  auto vgh_or = b.Build();
  ASSERT_TRUE(vgh_or.ok());
  auto cat_vgh = std::make_shared<const Vgh>(std::move(vgh_or).value());
  auto num_or = MakeEquiWidthVgh(0, rng.NextInt(2, 10), {2, 2, 2});
  ASSERT_TRUE(num_or.ok());
  auto num_vgh = std::make_shared<const Vgh>(std::move(num_or).value());

  auto schema = std::make_shared<Schema>();
  schema->AddCategorical("c", cat_vgh->MakeDomain());
  schema->AddNumeric("v");
  auto make_table = [&](int64_t n) {
    Table t(schema);
    for (int64_t i = 0; i < n; ++i) {
      t.AppendUnchecked(
          {Value::Category(static_cast<int32_t>(
               rng.NextBounded(static_cast<uint64_t>(cat_vgh->num_leaves())))),
           Value::Numeric(rng.NextDouble(0, num_vgh->RootRange() * 0.999))});
    }
    return t;
  };
  Table r = make_table(rng.NextInt(20, 120));
  Table s = make_table(rng.NextInt(20, 120));

  MatchRule rule;
  {
    AttrRule c;
    c.attr_index = 0;
    c.type = AttrType::kCategorical;
    c.theta = rng.NextDouble(0.1, 1.2);  // sometimes vacuous
    AttrRule v;
    v.attr_index = 1;
    v.type = AttrType::kNumeric;
    v.theta = rng.NextDouble(0.0, 0.4);
    v.norm = num_vgh->RootRange();
    rule.attrs = {c, v};
  }

  AnonymizerConfig cfg;
  cfg.k = rng.NextInt(1, 10);
  cfg.qid_attrs = {0, 1};
  cfg.hierarchies = {cat_vgh, num_vgh};
  const char* methods[] = {"MaxEntropy", "DataFly", "Mondrian", "Incognito"};
  auto anonymizer =
      MakeAnonymizerByName(methods[rng.NextBounded(4)], cfg);
  ASSERT_TRUE(anonymizer.ok());
  auto anon_r = (*anonymizer)->Anonymize(r);
  auto anon_s = (*anonymizer)->Anonymize(s);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());

  HybridConfig hc;
  hc.rule = rule;
  hc.smc_allowance_fraction = rng.NextDouble(0, 0.2);
  hc.heuristic = static_cast<SelectionHeuristic>(rng.NextBounded(4));
  hc.collect_matches = true;
  CountingPlaintextOracle oracle(rule);
  auto result = RunHybridLinkage(r, s, *anon_r, *anon_s, hc, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Accounting identities.
  EXPECT_EQ(result->total_pairs, r.num_rows() * s.num_rows());
  EXPECT_EQ(result->blocked_match_pairs + result->blocked_mismatch_pairs +
                result->unknown_pairs,
            result->total_pairs);
  EXPECT_LE(result->smc_processed, result->allowance_pairs);
  EXPECT_EQ(result->reported_matches,
            static_cast<int64_t>(result->matched_row_pairs.size()));

  // 100% precision: every reported link truly matches.
  for (const auto& [rr, sr] : result->matched_row_pairs) {
    EXPECT_TRUE(RecordsMatch(r.row(rr), s.row(sr), rule)) << GetParam();
  }
  // Reported <= truth, and truth is reachable with unlimited budget.
  auto truth = CountMatchingPairs(r, s, rule);
  ASSERT_TRUE(truth.ok());
  EXPECT_LE(result->reported_matches, *truth);
  HybridConfig full = hc;
  full.smc_allowance_fraction = 1.0;
  CountingPlaintextOracle oracle2(rule);
  auto complete = RunHybridLinkage(r, s, *anon_r, *anon_s, full, oracle2);
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(complete->reported_matches, *truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         ::testing::Range<uint64_t>(1, 13),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hprl
