#include <gtest/gtest.h>

#include <set>

#include "anon/anonymizer.h"
#include "core/blocking.h"
#include "core/hybrid.h"
#include "data/names.h"
#include "linkage/distance.h"
#include "linkage/ground_truth.h"
#include "linkage/oracle.h"

namespace hprl {
namespace {

VghPtr AgeVgh() {
  auto v = MakeEquiWidthVgh(16, 8, {3, 2, 2});
  EXPECT_TRUE(v.ok());
  return std::make_shared<const Vgh>(std::move(v).value());
}

AnonymizerConfig NameConfig(int64_t k) {
  AnonymizerConfig cfg;
  cfg.k = k;
  cfg.qid_attrs = {0, 1, 2};  // surname, city, age
  cfg.hierarchies = {nullptr, nullptr, AgeVgh()};
  return cfg;
}

MatchRule FuzzyRule() {
  MatchRule rule;
  AttrRule surname;
  surname.attr_index = 0;
  surname.type = AttrType::kText;
  surname.theta = 1;
  AttrRule city = surname;
  city.attr_index = 1;
  AttrRule age;
  age.attr_index = 2;
  age.type = AttrType::kNumeric;
  age.theta = 2.0 / 96.0;
  age.norm = 96;
  rule.attrs = {surname, city, age};
  return rule;
}

// ---------------------------------------------------------------- names

TEST(NamesTest, RegistryShapeAndDeterminism) {
  Table a = GenerateNameRegistry(300, 5);
  Table b = GenerateNameRegistry(300, 5);
  ASSERT_EQ(a.num_rows(), 300);
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.row(i), b.row(i));
    EXPECT_FALSE(a.at(i, 0).text().empty());
    EXPECT_GE(a.at(i, 2).num(), 17);
    EXPECT_LE(a.at(i, 2).num(), 90);
  }
}

TEST(NamesTest, RandomEditIsWithinOneOperation) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    std::string s = "garcia";
    std::string t = ApplyRandomEdit(s, rng);
    EXPECT_LE(EditDistance(s, t), 1);
  }
  // Editing the empty string only inserts.
  std::string e = ApplyRandomEdit("", rng);
  EXPECT_EQ(e.size(), 1u);
}

TEST(NamesTest, ZeroRatesCopyExactly) {
  Table a = GenerateNameRegistry(100, 6);
  Table b = CorruptRegistry(a, 0, 0, 1);
  for (int64_t i = 0; i < a.num_rows(); ++i) EXPECT_EQ(a.row(i), b.row(i));
}

TEST(NamesTest, CorruptionStaysWithinFuzzyRule) {
  Table a = GenerateNameRegistry(400, 7);
  Table b = CorruptRegistry(a, 0.5, 0.5, 2);
  MatchRule rule = FuzzyRule();
  // Each corrupted row is at most one edit per text field and ±1 in age, so
  // it still matches its source record under the fuzzy rule.
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_TRUE(RecordsMatch(a.row(i), b.row(i), rule)) << i;
  }
}

// ------------------------------------------------------- text anonymization

class TextAnonTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(TextAnonTest, MaxEntropyPrefixReleaseIsConsistentAndKAnonymous) {
  Table t = GenerateNameRegistry(600, 11);
  AnonymizerConfig cfg = NameConfig(GetParam());
  auto anon = MakeMaxEntropyAnonymizer(cfg)->Anonymize(t);
  ASSERT_TRUE(anon.ok()) << anon.status().ToString();
  EXPECT_TRUE(anon->IsKAnonymous(GetParam()))
      << "min group " << anon->MinGroupSize();

  std::set<int64_t> seen;
  for (const auto& g : anon->groups) {
    for (int64_t row : g.rows) {
      EXPECT_TRUE(seen.insert(row).second);
      for (int q = 0; q < 2; ++q) {
        const GenValue& gv = g.seq[q];
        ASSERT_EQ(gv.type, AttrType::kText);
        const std::string& s = t.at(row, q).text();
        // The release is accurate: the string extends the released prefix,
        // and an exact release equals the string.
        EXPECT_EQ(s.substr(0, gv.text_prefix.size()), gv.text_prefix);
        if (gv.text_exact) {
          EXPECT_EQ(s, gv.text_prefix);
        }
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), t.num_rows());
}

INSTANTIATE_TEST_SUITE_P(Ks, TextAnonTest,
                         ::testing::Values<int64_t>(1, 2, 8, 32, 128),
                         [](const ::testing::TestParamInfo<int64_t>& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(TextAnonDataflyTest, PrefixLevelsAreKAnonymousWithBoundedSuppression) {
  Table t = GenerateNameRegistry(600, 12);
  AnonymizerConfig cfg = NameConfig(16);
  auto anon = MakeDataflyAnonymizer(cfg)->Anonymize(t);
  ASSERT_TRUE(anon.ok()) << anon.status().ToString();
  EXPECT_TRUE(anon->IsKAnonymous(16));
  EXPECT_LE(anon->suppressed, 16);
  for (const auto& g : anon->groups) {
    for (int64_t row : g.rows) {
      for (int q = 0; q < 2; ++q) {
        const std::string& s = t.at(row, q).text();
        EXPECT_EQ(s.substr(0, g.seq[q].text_prefix.size()),
                  g.seq[q].text_prefix);
      }
    }
  }
}

TEST(TextAnonTest, TdsAndMondrianRejectTextQids) {
  Table t = GenerateNameRegistry(100, 13);
  AnonymizerConfig cfg = NameConfig(4);
  cfg.class_attr = -1;
  auto mondrian = MakeMondrianAnonymizer(cfg)->Anonymize(t);
  EXPECT_EQ(mondrian.status().code(), StatusCode::kUnimplemented);
  cfg.class_attr = 2;  // numeric — TDS rejects class kind first or text
  auto tds = MakeTdsAnonymizer(cfg)->Anonymize(t);
  EXPECT_FALSE(tds.ok());
}

TEST(TextAnonTest, TextQidWithHierarchyRejected) {
  Table t = GenerateNameRegistry(100, 14);
  AnonymizerConfig cfg = NameConfig(4);
  cfg.hierarchies[0] = AgeVgh();  // a VGH on a text attribute is an error
  EXPECT_FALSE(MakeMaxEntropyAnonymizer(cfg)->Anonymize(t).ok());
}

// ------------------------------------------------------- blocking + hybrid

TEST(TextBlockingTest, MismatchLabelsAreSoundOnPrefixes) {
  Table a = GenerateNameRegistry(400, 15);
  Table b = CorruptRegistry(a, 0.3, 0.2, 3);
  AnonymizerConfig cfg = NameConfig(8);
  auto anon_a = MakeMaxEntropyAnonymizer(cfg)->Anonymize(a);
  auto anon_b = MakeMaxEntropyAnonymizer(cfg)->Anonymize(b);
  ASSERT_TRUE(anon_a.ok() && anon_b.ok());
  MatchRule rule = FuzzyRule();
  auto blocking = RunBlocking(*anon_a, *anon_b, rule);
  ASSERT_TRUE(blocking.ok());
  EXPECT_GT(blocking->mismatched_pairs, 0);

  // Every pair inside an N-labeled group pair must truly mismatch. (Checking
  // all M groups too: with text supremum infinite, M requires both exact.)
  // Validate by exhaustive re-derivation over a sample of group pairs.
  auto check_group = [&](const SequencePair& sp, bool expect_match) {
    for (int64_t ra : anon_a->groups[sp.group_r].rows) {
      for (int64_t rb : anon_b->groups[sp.group_s].rows) {
        EXPECT_EQ(RecordsMatch(a.row(ra), b.row(rb), rule), expect_match);
      }
    }
  };
  for (size_t i = 0; i < std::min<size_t>(5, blocking->matches.size()); ++i) {
    check_group(blocking->matches[i], true);
  }
  // Soundness of N is implied by total-count bookkeeping below: matches can
  // only live in M ∪ U.
  auto truth = CountMatchingPairs(a, b, rule);
  ASSERT_TRUE(truth.ok());
  EXPECT_LE(blocking->matched_pairs, *truth);
  EXPECT_GE(blocking->matched_pairs + blocking->unknown_pairs, *truth);
}

TEST(TextHybridTest, FullBudgetReachesPerfectRecallOnTypos) {
  Table a = GenerateNameRegistry(500, 16);
  Table b = CorruptRegistry(a, 0.35, 0.3, 4);
  AnonymizerConfig cfg = NameConfig(8);
  auto anon_a = MakeMaxEntropyAnonymizer(cfg)->Anonymize(a);
  auto anon_b = MakeMaxEntropyAnonymizer(cfg)->Anonymize(b);
  ASSERT_TRUE(anon_a.ok() && anon_b.ok());

  MatchRule rule = FuzzyRule();
  HybridConfig hc;
  hc.rule = rule;
  hc.smc_allowance_fraction = 1.0;
  CountingPlaintextOracle oracle(rule);
  auto result = RunHybridLinkage(a, b, *anon_a, *anon_b, hc, oracle);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(EvaluateRecall(a, b, rule, &result.value()).ok());
  EXPECT_DOUBLE_EQ(result->recall, 1.0);
  EXPECT_DOUBLE_EQ(result->precision, 1.0);
  // Every corrupted record should find its source: truth >= |a|.
  EXPECT_GE(result->true_matches, a.num_rows());
  // Blocking must have pruned something despite fuzzy matching.
  EXPECT_GT(result->blocking_efficiency, 0.3);
}

}  // namespace
}  // namespace hprl
