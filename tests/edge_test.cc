// Edge-case suite: degenerate inputs and extreme parameters across the whole
// pipeline. Behaviors asserted here are the documented contracts for the
// corners (empty inputs, k > n, vacuous thresholds, zero budgets, ...).

#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "core/blocking.h"
#include "core/hybrid.h"
#include "linkage/ground_truth.h"
#include "linkage/oracle.h"

namespace hprl {
namespace {

/// Tiny single-attribute world: one categorical QID with 4 leaves.
struct TinyWorld {
  VghPtr vgh;
  SchemaPtr schema;
  MatchRule rule;
  AnonymizerConfig anon_cfg;

  TinyWorld() {
    VghBuilder b(Vgh::Kind::kCategorical);
    int any = b.AddRoot("ANY");
    int left = b.AddChild(any, "L");
    b.AddChild(left, "a");
    b.AddChild(left, "b");
    int right = b.AddChild(any, "R");
    b.AddChild(right, "c");
    b.AddChild(right, "d");
    auto built = b.Build();
    EXPECT_TRUE(built.ok());
    vgh = std::make_shared<const Vgh>(std::move(built).value());

    auto s = std::make_shared<Schema>();
    s->AddCategorical("x", vgh->MakeDomain());
    schema = s;

    AttrRule r;
    r.attr_index = 0;
    r.type = AttrType::kCategorical;
    r.theta = 0.5;
    rule.attrs = {r};

    anon_cfg.k = 2;
    anon_cfg.qid_attrs = {0};
    anon_cfg.hierarchies = {vgh};
  }

  Table MakeTable(const std::vector<int32_t>& cats) const {
    Table t(schema);
    for (int32_t c : cats) t.AppendUnchecked({Value::Category(c)});
    return t;
  }
};

TEST(EdgeTest, EmptyTableAnonymizesToNothingUseful) {
  TinyWorld w;
  Table empty = w.MakeTable({});
  auto anon = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(empty);
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->num_rows, 0);
  // Whatever groups exist must be empty; blocking over them decides nothing.
  auto blocking = RunBlocking(*anon, *anon, w.rule);
  ASSERT_TRUE(blocking.ok());
  EXPECT_EQ(blocking->total_pairs, 0);
  EXPECT_EQ(blocking->matched_pairs + blocking->mismatched_pairs +
                blocking->unknown_pairs,
            0);
}

TEST(EdgeTest, KGreaterThanTableSizeReleasesOneRootGroup) {
  TinyWorld w;
  w.anon_cfg.k = 100;
  Table t = w.MakeTable({0, 1, 2, 3});
  auto anon = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(t);
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->NumSequences(), 1);
  EXPECT_FALSE(anon->IsKAnonymous(100));  // cannot be helped: n < k
  EXPECT_TRUE(anon->IsKAnonymous(4));
}

TEST(EdgeTest, DataflySuppressesEverythingWhenKExceedsN) {
  TinyWorld w;
  w.anon_cfg.k = 100;
  Table t = w.MakeTable({0, 1, 2, 3});
  auto anon = MakeDataflyAnonymizer(w.anon_cfg)->Anonymize(t);
  ASSERT_TRUE(anon.ok());
  // All rows are outliers (4 <= k) -> one fully generalized group; since
  // everything is suppressed the release still covers every row.
  int64_t covered = 0;
  for (const auto& g : anon->groups) covered += g.rows.size();
  EXPECT_EQ(covered, 4);
}

TEST(EdgeTest, SingleRowTables) {
  TinyWorld w;
  w.anon_cfg.k = 1;
  Table r = w.MakeTable({0});
  Table s_match = w.MakeTable({0});
  Table s_miss = w.MakeTable({3});
  auto anon_r = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(r);
  auto anon_sm = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(s_match);
  auto anon_sx = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(s_miss);
  ASSERT_TRUE(anon_r.ok() && anon_sm.ok() && anon_sx.ok());

  auto b1 = RunBlocking(*anon_r, *anon_sm, w.rule);
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1->matched_pairs, 1);  // singleton == singleton: provable match
  auto b2 = RunBlocking(*anon_r, *anon_sx, w.rule);
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->mismatched_pairs, 1);
}

TEST(EdgeTest, VacuousCategoricalThresholdMatchesEverything) {
  TinyWorld w;
  w.rule.attrs[0].theta = 1.0;  // Hamming never exceeds 1
  Table r = w.MakeTable({0, 1});
  Table s = w.MakeTable({2, 3});
  EXPECT_EQ(CountMatchingPairsNaive(r, s, w.rule), 4);
  auto fast = CountMatchingPairs(r, s, w.rule);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, 4);

  // Blocking agrees: sup distance 1 <= theta, every pair is a provable match.
  w.anon_cfg.k = 2;
  auto anon_r = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(r);
  auto anon_s = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(s);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());
  auto blocking = RunBlocking(*anon_r, *anon_s, w.rule);
  ASSERT_TRUE(blocking.ok());
  EXPECT_EQ(blocking->matched_pairs, 4);
}

TEST(EdgeTest, ZeroThetaNumericMeansExactEquality) {
  auto vgh_or = MakeEquiWidthVgh(0, 10, {4});
  ASSERT_TRUE(vgh_or.ok());
  auto vgh = std::make_shared<const Vgh>(std::move(vgh_or).value());
  auto schema = std::make_shared<Schema>();
  schema->AddNumeric("v");
  MatchRule rule;
  AttrRule a;
  a.attr_index = 0;
  a.type = AttrType::kNumeric;
  a.theta = 0;
  a.norm = vgh->RootRange();
  rule.attrs = {a};

  Table r(schema), s(schema);
  r.AppendUnchecked({Value::Numeric(7)});
  s.AppendUnchecked({Value::Numeric(7)});
  s.AppendUnchecked({Value::Numeric(7.0001)});
  auto n = CountMatchingPairs(r, s, rule);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
}

TEST(EdgeTest, TinyAllowanceRoundsDownToZeroInvocations) {
  TinyWorld w;
  Table r = w.MakeTable({0, 1, 0, 1});
  Table s = w.MakeTable({0, 1, 1, 0});
  auto anon_r = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(r);
  auto anon_s = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(s);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());
  HybridConfig hc;
  hc.rule = w.rule;
  hc.smc_allowance_fraction = 1e-9;  // 16 pairs * 1e-9 -> floor 0
  CountingPlaintextOracle oracle(w.rule);
  auto result = RunHybridLinkage(r, s, *anon_r, *anon_s, hc, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->allowance_pairs, 0);
  EXPECT_EQ(result->smc_processed, 0);
}

TEST(EdgeTest, MismatchedReleaseIsRejectedByPipeline) {
  TinyWorld w;
  Table r = w.MakeTable({0, 1});
  Table s = w.MakeTable({0, 1});
  auto anon = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(r);
  ASSERT_TRUE(anon.ok());
  AnonymizedTable wrong = *anon;
  wrong.num_rows = 99;  // claims rows it does not have
  HybridConfig hc;
  hc.rule = w.rule;
  CountingPlaintextOracle oracle(w.rule);
  EXPECT_FALSE(RunHybridLinkage(r, s, wrong, *anon, hc, oracle).ok());
}

TEST(EdgeTest, PublishedReleaseRejectedByPipeline) {
  TinyWorld w;
  Table r = w.MakeTable({0, 1});
  auto anon = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(r);
  ASSERT_TRUE(anon.ok());
  AnonymizedTable published = *anon;
  for (auto& g : published.groups) {
    g.published_size = static_cast<int64_t>(g.rows.size());
    g.rows.clear();
  }
  HybridConfig hc;
  hc.rule = w.rule;
  CountingPlaintextOracle oracle(w.rule);
  auto result = RunHybridLinkage(r, r, published, *anon, hc, oracle);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EdgeTest, DuplicateRowsStayTogether) {
  TinyWorld w;
  Table t = w.MakeTable({2, 2, 2, 2, 2, 2});
  auto anon = MakeMaxEntropyAnonymizer(w.anon_cfg)->Anonymize(t);
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->NumSequences(), 1);
  EXPECT_TRUE(anon->groups[0].seq[0].IsSingleton());
  // Self-join: all 36 pairs are provable matches from the release alone.
  auto blocking = RunBlocking(*anon, *anon, w.rule);
  ASSERT_TRUE(blocking.ok());
  EXPECT_EQ(blocking->matched_pairs, 36);
}

TEST(EdgeTest, SingleLeafHierarchy) {
  VghBuilder b(Vgh::Kind::kCategorical);
  int any = b.AddRoot("ANY");
  b.AddChild(any, "only");
  auto built = b.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->num_leaves(), 1);
  EXPECT_EQ(built->height(), 1);
  GenValue g = built->Gen(Vgh::kRoot);
  EXPECT_EQ(g.CategoryCount(), 1);
  EXPECT_TRUE(g.IsSingleton());  // the root admits exactly one value
}

}  // namespace
}  // namespace hprl
