#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "data/csv.h"
#include "data/partition.h"
#include "data/schema.h"
#include "data/table.h"
#include "data/value.h"

namespace hprl {
namespace {

SchemaPtr MakeTestSchema() {
  auto domain = std::make_shared<CategoryDomain>(
      std::vector<std::string>{"red", "green", "blue"});
  auto schema = std::make_shared<Schema>();
  schema->AddNumeric("x");
  schema->AddCategorical("color", domain);
  schema->AddText("note");
  return schema;
}

// ---------------------------------------------------------------- Value

TEST(ValueTest, KindsAndPayloads) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_DOUBLE_EQ(Value::Numeric(2.5).num(), 2.5);
  EXPECT_EQ(Value::Category(3).category(), 3);
  EXPECT_EQ(Value::Text("hi").text(), "hi");
}

TEST(ValueTest, EqualityIsKindAndPayload) {
  EXPECT_EQ(Value::Numeric(1.0), Value::Numeric(1.0));
  EXPECT_NE(Value::Numeric(1.0), Value::Numeric(2.0));
  EXPECT_NE(Value::Numeric(1.0), Value::Category(1));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Text("a"), Value::Text("a"));
}

// ---------------------------------------------------------------- Domain

TEST(CategoryDomainTest, AddAndFind) {
  CategoryDomain d;
  EXPECT_EQ(*d.Add("a"), 0);
  EXPECT_EQ(*d.Add("b"), 1);
  EXPECT_FALSE(d.Add("a").ok());
  EXPECT_EQ(d.Find("b"), 1);
  EXPECT_EQ(d.Find("zz"), -1);
  EXPECT_EQ(d.GetOrAdd("b"), 1);
  EXPECT_EQ(d.GetOrAdd("c"), 2);
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(d.label(2), "c");
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, LookupAndRender) {
  SchemaPtr s = MakeTestSchema();
  EXPECT_EQ(s->num_attributes(), 3);
  EXPECT_EQ(s->FindIndex("color"), 1);
  EXPECT_EQ(s->FindIndex("nope"), -1);
  EXPECT_EQ(s->RenderValue(0, Value::Numeric(2)), "2");
  EXPECT_EQ(s->RenderValue(1, Value::Category(2)), "blue");
  EXPECT_EQ(s->RenderValue(2, Value::Text("n")), "n");
  EXPECT_EQ(s->RenderValue(0, Value::Null()), "?");
}

// ---------------------------------------------------------------- Table

TEST(TableTest, AppendValidates) {
  Table t(MakeTestSchema());
  EXPECT_TRUE(
      t.Append({Value::Numeric(1), Value::Category(0), Value::Text("a")})
          .ok());
  // Wrong arity.
  EXPECT_FALSE(t.Append({Value::Numeric(1)}).ok());
  // Wrong kind.
  EXPECT_FALSE(
      t.Append({Value::Category(0), Value::Category(0), Value::Text("a")})
          .ok());
  // Out-of-domain category.
  EXPECT_FALSE(
      t.Append({Value::Numeric(1), Value::Category(9), Value::Text("a")})
          .ok());
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, GatherSelectsRows) {
  Table t(MakeTestSchema());
  for (int i = 0; i < 5; ++i) {
    t.AppendUnchecked(
        {Value::Numeric(i), Value::Category(i % 3), Value::Text("r")});
  }
  Table g = t.Gather({4, 0, 4});
  ASSERT_EQ(g.num_rows(), 3);
  EXPECT_DOUBLE_EQ(g.at(0, 0).num(), 4);
  EXPECT_DOUBLE_EQ(g.at(1, 0).num(), 0);
  EXPECT_DOUBLE_EQ(g.at(2, 0).num(), 4);
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, ParseLineHandlesQuotes) {
  auto f = ParseCsvLine("a,\"b,c\",\"d\"\"e\"");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, (std::vector<std::string>{"a", "b,c", "d\"e"}));
}

TEST(CsvTest, ParseLineRejectsBadQuoting) {
  EXPECT_FALSE(ParseCsvLine("a,\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("a,b\"c").ok());
}

TEST(CsvTest, RoundTrip) {
  SchemaPtr schema = MakeTestSchema();
  Table t(schema);
  t.AppendUnchecked(
      {Value::Numeric(1.5), Value::Category(2), Value::Text("hello, world")});
  t.AppendUnchecked({Value::Null(), Value::Category(0), Value::Text("x\"y")});

  std::string path =
      (std::filesystem::temp_directory_path() / "hprl_csv_test.csv").string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), 2);
  EXPECT_DOUBLE_EQ(back->at(0, 0).num(), 1.5);
  EXPECT_EQ(back->at(0, 1).category(), 2);
  EXPECT_EQ(back->at(0, 2).text(), "hello, world");
  EXPECT_TRUE(back->at(1, 0).is_null());
  EXPECT_EQ(back->at(1, 2).text(), "x\"y");
  std::remove(path.c_str());
}

TEST(CsvTest, StrictRejectsUnknownCategory) {
  SchemaPtr schema = MakeTestSchema();
  std::string path =
      (std::filesystem::temp_directory_path() / "hprl_csv_cat.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("x,color,note\n1,magenta,n\n", f);
    fclose(f);
  }
  EXPECT_FALSE(ReadCsv(path, schema, /*strict_categories=*/true).ok());
  auto lenient = ReadCsv(path, schema, /*strict_categories=*/false);
  ASSERT_TRUE(lenient.ok());
  EXPECT_EQ(lenient->schema()->attribute(1).domain->Find("magenta"), 3);
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderMismatchFails) {
  SchemaPtr schema = MakeTestSchema();
  std::string path =
      (std::filesystem::temp_directory_path() / "hprl_csv_hdr.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("x,wrong,note\n", f);
    fclose(f);
  }
  EXPECT_FALSE(ReadCsv(path, schema).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- split

TEST(PartitionTest, SplitShapesMatchPaperConstruction) {
  auto schema = std::make_shared<Schema>();
  schema->AddNumeric("id");
  Table t(schema);
  const int64_t n = 301;  // not divisible by 3: remainder dropped
  for (int64_t i = 0; i < n; ++i) t.AppendUnchecked({Value::Numeric(i)});

  Rng rng(5);
  auto split = SplitForLinkage(t, rng);
  ASSERT_TRUE(split.ok());
  int64_t part = n / 3;
  EXPECT_EQ(split->d1.num_rows(), 2 * part);
  EXPECT_EQ(split->d2.num_rows(), 2 * part);
  EXPECT_EQ(split->shared_count, part);

  // The trailing `part` rows coincide (d3 shared block).
  for (int64_t i = 0; i < part; ++i) {
    EXPECT_EQ(split->d1_source[part + i], split->d2_source[part + i]);
    EXPECT_EQ(split->d1.at(part + i, 0).num(), split->d2.at(part + i, 0).num());
  }
  // The leading parts are disjoint.
  std::set<int64_t> d1_own(split->d1_source.begin(),
                           split->d1_source.begin() + part);
  for (int64_t i = 0; i < part; ++i) {
    EXPECT_EQ(d1_own.count(split->d2_source[i]), 0u);
  }
}

TEST(PartitionTest, TooSmallFails) {
  auto schema = std::make_shared<Schema>();
  schema->AddNumeric("id");
  Table t(schema);
  t.AppendUnchecked({Value::Numeric(0)});
  Rng rng(1);
  EXPECT_FALSE(SplitForLinkage(t, rng).ok());
}

}  // namespace
}  // namespace hprl
