#include <gtest/gtest.h>

#include <vector>

#include "crypto/bigint.h"
#include "crypto/fixed_base.h"
#include "crypto/fixed_point.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"
#include "crypto/secure_random.h"

namespace hprl::crypto {
namespace {

// Small keys keep the suite fast; real-size keys are covered by one test and
// the micro benches.
constexpr int kTestKeyBits = 256;

TEST(BigIntTest, BasicArithmetic) {
  BigInt a(100), b(7);
  EXPECT_EQ((a + b).ToString(), "107");
  EXPECT_EQ((a - b).ToString(), "93");
  EXPECT_EQ((a * b).ToString(), "700");
  EXPECT_EQ((a / b).ToString(), "14");
  EXPECT_EQ((a % b).ToString(), "2");
  EXPECT_EQ((-a).ToString(), "-100");
}

TEST(BigIntTest, EuclideanModOfNegative) {
  BigInt a(-5), m(7);
  EXPECT_EQ((a % m).ToString(), "2");  // mpz_mod is non-negative
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_LE(BigInt(2), BigInt(2));
  EXPECT_GT(BigInt(3), BigInt(-3));
  EXPECT_EQ(BigInt(0), BigInt());
}

TEST(BigIntTest, StringRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  auto x = BigInt::FromString(big);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->ToString(), big);
  EXPECT_FALSE(BigInt::FromString("12z").ok());
  EXPECT_FALSE(BigInt::FromString("").ok());
}

TEST(BigIntTest, BytesRoundTrip) {
  auto x = BigInt::FromString("987654321098765432109876543210");
  ASSERT_TRUE(x.ok());
  auto bytes = x->ToBytes();
  EXPECT_EQ(BigInt::FromBytes(bytes), *x);
  EXPECT_TRUE(BigInt(0).ToBytes().empty());
  EXPECT_EQ(BigInt::FromBytes({}), BigInt(0));
}

TEST(BigIntTest, ToInt64Bounds) {
  EXPECT_EQ(*BigInt(-42).ToInt64(), -42);
  auto huge = BigInt::FromString("99999999999999999999999999");
  ASSERT_TRUE(huge.ok());
  EXPECT_FALSE(huge->ToInt64().ok());
}

TEST(BigIntTest, PowModAndInverse) {
  BigInt base(4), exp(13), mod(497);
  EXPECT_EQ(BigInt::PowMod(base, exp, mod), BigInt(445));
  auto inv = BigInt::ModInverse(BigInt(3), BigInt(11));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*inv, BigInt(4));
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9)).ok());  // gcd 3
}

TEST(BigIntTest, GcdLcmPrime) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_TRUE(BigInt(104729).IsProbablePrime());
  EXPECT_FALSE(BigInt(104730).IsProbablePrime());
  EXPECT_EQ(BigInt(100).NextPrime(), BigInt(101));
}

TEST(SecureRandomTest, DeterministicSeedReproduces) {
  SecureRandom a(5), b(5);
  EXPECT_EQ(a.NextBits(128), b.NextBits(128));
  EXPECT_EQ(a.NextBelow(BigInt(1000000)), b.NextBelow(BigInt(1000000)));
}

TEST(SecureRandomTest, BitsBound) {
  SecureRandom rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(rng.NextBits(64).BitLength(), 64u);
  }
}

TEST(SecureRandomTest, BelowBound) {
  SecureRandom rng(7);
  BigInt bound(1000);
  for (int i = 0; i < 200; ++i) {
    BigInt x = rng.NextBelow(bound);
    EXPECT_GE(x.Sign(), 0);
    EXPECT_LT(x, bound);
  }
}

TEST(SecureRandomTest, PrimesHaveExactBitLength) {
  SecureRandom rng(8);
  for (int i = 0; i < 5; ++i) {
    BigInt p = rng.NextPrime(96);
    EXPECT_EQ(p.BitLength(), 96u);
    EXPECT_TRUE(p.IsProbablePrime());
  }
}

TEST(SecureRandomTest, OsEntropyWorks) {
  SecureRandom rng;  // real /dev/urandom
  BigInt a = rng.NextBits(128);
  BigInt b = rng.NextBits(128);
  EXPECT_NE(a, b);  // 2^-128 false-failure probability
}

class PaillierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SecureRandom rng(1234);
    auto kp = GeneratePaillierKeyPair(kTestKeyBits, rng);
    ASSERT_TRUE(kp.ok()) << kp.status().ToString();
    pub_ = kp->pub;
    priv_ = kp->priv;
  }
  SecureRandom rng_{99};
  PaillierPublicKey pub_;
  PaillierPrivateKey priv_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int64_t m : {0LL, 1LL, 42LL, 1234567890LL}) {
    auto c = pub_.Encrypt(BigInt(m), rng_);
    ASSERT_TRUE(c.ok());
    auto d = priv_.Decrypt(*c);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, BigInt(m)) << m;
  }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  auto c1 = pub_.Encrypt(BigInt(5), rng_);
  auto c2 = pub_.Encrypt(BigInt(5), rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);
  EXPECT_EQ(*priv_.Decrypt(*c1), *priv_.Decrypt(*c2));
}

TEST_F(PaillierTest, RejectsOutOfRangePlaintext) {
  EXPECT_FALSE(pub_.Encrypt(BigInt(-1), rng_).ok());
  EXPECT_FALSE(pub_.Encrypt(pub_.n(), rng_).ok());
}

TEST_F(PaillierTest, RejectsBadCiphertext) {
  EXPECT_FALSE(priv_.Decrypt(BigInt(0)).ok());
  EXPECT_FALSE(priv_.Decrypt(pub_.n_squared()).ok());
}

TEST_F(PaillierTest, HomomorphicAdd) {
  auto c1 = pub_.Encrypt(BigInt(1111), rng_);
  auto c2 = pub_.Encrypt(BigInt(2222), rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto sum = priv_.Decrypt(pub_.Add(*c1, *c2));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, BigInt(3333));
}

TEST_F(PaillierTest, HomomorphicScalarMul) {
  auto c = pub_.Encrypt(BigInt(77), rng_);
  ASSERT_TRUE(c.ok());
  auto prod = priv_.Decrypt(pub_.ScalarMul(*c, BigInt(9)));
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(*prod, BigInt(693));
}

TEST_F(PaillierTest, SignedEncodingSurvivesArithmetic) {
  // Enc(x) +h Enc(-2x) should decode (signed) to -x.
  auto c1 = pub_.EncryptSigned(BigInt(500), rng_);
  auto c2 = pub_.EncryptSigned(BigInt(-1000), rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto d = priv_.DecryptSigned(pub_.Add(*c1, *c2));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, BigInt(-500));
}

TEST_F(PaillierTest, NegativeScalarMul) {
  auto c = pub_.EncryptSigned(BigInt(30), rng_);
  ASSERT_TRUE(c.ok());
  auto d = priv_.DecryptSigned(pub_.ScalarMul(*c, BigInt(-4)));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, BigInt(-120));
}

TEST_F(PaillierTest, PaperSquaredDistanceIdentity) {
  // The §V-A computation: Enc(x²) +h (Enc(-2x) ×h y) +h Enc(y²) = Enc((x-y)²).
  int64_t x = 357, y = 123;
  auto cx2 = pub_.EncryptSigned(BigInt(x * x), rng_);
  auto cm2x = pub_.EncryptSigned(BigInt(-2 * x), rng_);
  auto cy2 = pub_.EncryptSigned(BigInt(y * y), rng_);
  ASSERT_TRUE(cx2.ok() && cm2x.ok() && cy2.ok());
  BigInt c = pub_.Add(pub_.Add(*cx2, pub_.ScalarMul(*cm2x, BigInt(y))), *cy2);
  auto d = priv_.DecryptSigned(c);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, BigInt((x - y) * (x - y)));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  auto c = pub_.Encrypt(BigInt(31337), rng_);
  ASSERT_TRUE(c.ok());
  auto c2 = pub_.Rerandomize(*c, rng_);
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c, *c2);
  EXPECT_EQ(*priv_.Decrypt(*c2), BigInt(31337));
}

TEST_F(PaillierTest, CrtDecryptMatchesReferenceOnEdgePlaintexts) {
  ASSERT_TRUE(priv_.has_crt());
  const BigInt n = pub_.n();
  const BigInt half = n / BigInt(2);
  const std::vector<BigInt> plaintexts = {
      BigInt(0),          BigInt(1),         BigInt(2),
      BigInt(424242),     half - BigInt(1),  half,
      half + BigInt(1),   n - BigInt(2),     n - BigInt(1)};
  for (const BigInt& m : plaintexts) {
    auto c = pub_.Encrypt(m, rng_);
    ASSERT_TRUE(c.ok());
    auto fast = priv_.Decrypt(*c);
    auto ref = priv_.DecryptReference(*c);
    ASSERT_TRUE(fast.ok() && ref.ok());
    EXPECT_EQ(*fast, *ref) << m.ToString();
    EXPECT_EQ(*fast, m) << m.ToString();
  }
}

TEST_F(PaillierTest, CrtSignedDecryptMatchesReference) {
  for (int64_t x : {0LL, 1LL, -1LL, 1000LL, -1000LL, 123456789LL,
                    -123456789LL}) {
    auto c = pub_.EncryptSigned(BigInt(x), rng_);
    ASSERT_TRUE(c.ok());
    auto fast = priv_.DecryptSigned(*c);
    auto ref = priv_.DecryptSignedReference(*c);
    ASSERT_TRUE(fast.ok() && ref.ok());
    EXPECT_EQ(*fast, *ref) << x;
    EXPECT_EQ(*fast, BigInt(x)) << x;
  }
}

TEST_F(PaillierTest, CrtSurvivesHomomorphicArithmetic) {
  // Homomorphic results are the ciphertexts the SMC protocol actually
  // decrypts — check the fast path on those, not just fresh encryptions.
  int64_t x = 357, y = 123;
  auto cx2 = pub_.EncryptSigned(BigInt(x * x), rng_);
  auto cm2x = pub_.EncryptSigned(BigInt(-2 * x), rng_);
  auto cy2 = pub_.EncryptSigned(BigInt(y * y), rng_);
  ASSERT_TRUE(cx2.ok() && cm2x.ok() && cy2.ok());
  BigInt c = pub_.Add(pub_.Add(*cx2, pub_.ScalarMul(*cm2x, BigInt(y))), *cy2);
  auto fast = priv_.DecryptSigned(c);
  auto ref = priv_.DecryptSignedReference(c);
  ASSERT_TRUE(fast.ok() && ref.ok());
  EXPECT_EQ(*fast, *ref);
  EXPECT_EQ(*fast, BigInt((x - y) * (x - y)));
}

TEST(PaillierCrtTest, ReferenceOnlyKeyStillDecrypts) {
  // A key built through the legacy (n, lambda, mu) ctor has no CRT data and
  // must transparently fall back to the reference path.
  SecureRandom rng(4321);
  BigInt p = rng.NextPrime(128);
  BigInt q = rng.NextPrime(128);
  while (q == p) q = rng.NextPrime(128);
  BigInt n = p * q;
  BigInt lambda = BigInt::Lcm(p - BigInt(1), q - BigInt(1));
  auto mu = BigInt::ModInverse(lambda, n);  // g = n+1 ⇒ L(g^λ) = λ mod n
  ASSERT_TRUE(mu.ok());
  PaillierPublicKey pub(n);
  PaillierPrivateKey priv(n, lambda, *mu);
  EXPECT_FALSE(priv.has_crt());

  auto crt = PaillierPrivateKey::FromPrimes(p, q);
  ASSERT_TRUE(crt.ok());
  EXPECT_TRUE(crt->has_crt());

  SecureRandom enc_rng(55);
  for (int64_t m : {0LL, 7LL, 31337LL}) {
    auto c = pub.Encrypt(BigInt(m), enc_rng);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*priv.Decrypt(*c), BigInt(m));
    EXPECT_EQ(*crt->Decrypt(*c), BigInt(m));
  }
}

TEST(PaillierCrtTest, FromPrimesRejectsBadModulus) {
  // p == q gives gcd(n, λ) != 1 — FromPrimes must refuse it.
  BigInt p(104729);
  EXPECT_FALSE(PaillierPrivateKey::FromPrimes(p, p).ok());
}

class RandomizerPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SecureRandom rng(2024);
    auto kp = GeneratePaillierKeyPair(kTestKeyBits, rng);
    ASSERT_TRUE(kp.ok()) << kp.status().ToString();
    pub_ = kp->pub;
    priv_ = kp->priv;
  }
  SecureRandom rng_{7};
  PaillierPublicKey pub_;
  PaillierPrivateKey priv_;
};

TEST_F(RandomizerPoolTest, PooledEncryptionRoundTrips) {
  RandomizerPool pool(pub_, /*target_depth=*/8, /*test_seed=*/99);
  pool.Prefill(8);
  EXPECT_EQ(pool.depth(), 8);
  pub_.AttachRandomizerPool(&pool);
  for (int64_t m : {0LL, 1LL, 123456LL}) {
    auto c = pub_.Encrypt(BigInt(m), rng_);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*priv_.Decrypt(*c), BigInt(m)) << m;
  }
  auto cs = pub_.EncryptSigned(BigInt(-777), rng_);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(*priv_.DecryptSigned(*cs), BigInt(-777));
  EXPECT_GT(pool.hits(), 0);
  EXPECT_EQ(pool.misses(), 0);
}

TEST_F(RandomizerPoolTest, PooledRerandomizePreservesPlaintext) {
  RandomizerPool pool(pub_, 4, 5);
  pool.Prefill(4);
  pub_.AttachRandomizerPool(&pool);
  auto c = pub_.Encrypt(BigInt(31337), rng_);
  ASSERT_TRUE(c.ok());
  auto c2 = pub_.Rerandomize(*c, rng_);
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c, *c2);
  EXPECT_EQ(*priv_.Decrypt(*c2), BigInt(31337));
}

TEST_F(RandomizerPoolTest, DrainedPoolFallsBackInline) {
  RandomizerPool pool(pub_, 2, 11);
  pool.Prefill(2);
  pub_.AttachRandomizerPool(&pool);
  for (int i = 0; i < 5; ++i) {
    auto c = pub_.Encrypt(BigInt(i), rng_);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*priv_.Decrypt(*c), BigInt(i));
  }
  EXPECT_EQ(pool.hits(), 2);
  EXPECT_EQ(pool.misses(), 3);
}

TEST_F(RandomizerPoolTest, BackgroundFillerServesTakes) {
  // Exercises the filler thread / Take() handoff (TSan covers the races).
  RandomizerPool pool(pub_, 6, 13);
  pool.Start();
  for (int i = 0; i < 20; ++i) {
    BigInt rn = pool.Take();
    // Every value must be a valid unit r^n mod n²: decrypting it as a
    // ciphertext of 0 must give 0.
    EXPECT_EQ(*priv_.Decrypt(rn), BigInt(0));
  }
  pool.Stop();
  EXPECT_EQ(pool.hits() + pool.misses(), 20);
}

TEST_F(RandomizerPoolTest, MetricsStreamHitsMissesDepth) {
  obs::MetricsRegistry registry;
  RandomizerPool pool(pub_, 3, 17);
  pool.AttachMetrics(&registry);
  pool.Prefill(3);
  pub_.AttachRandomizerPool(&pool);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pub_.Encrypt(BigInt(i), rng_).ok());
  }
  auto counters = registry.CounterValues();
  EXPECT_EQ(counters.at("paillier.randomizer_pool_hits"), 3);
  EXPECT_EQ(counters.at("paillier.randomizer_pool_misses"), 1);
  EXPECT_EQ(registry.GaugeValues().at("paillier.randomizer_pool_depth"), 0);
}

TEST(PaillierKeyGenTest, RejectsTinyModulus) {
  SecureRandom rng(1);
  EXPECT_FALSE(GeneratePaillierKeyPair(32, rng).ok());
}

TEST(PaillierKeyGenTest, PaperSize1024Works) {
  SecureRandom rng(77);
  auto kp = GeneratePaillierKeyPair(1024, rng);
  ASSERT_TRUE(kp.ok());
  EXPECT_GE(kp->pub.modulus_bits(), 1023);
  SecureRandom enc_rng(78);
  auto c = kp->pub.Encrypt(BigInt(424242), enc_rng);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*kp->priv.Decrypt(*c), BigInt(424242));
}

TEST(FixedPointTest, RoundTripAndSquares) {
  FixedPointCodec codec(1000);
  EXPECT_EQ(codec.Encode(1.5), BigInt(1500));
  EXPECT_EQ(codec.Encode(-2.5), BigInt(-2500));
  EXPECT_DOUBLE_EQ(codec.Decode(BigInt(1500)), 1.5);
  EXPECT_DOUBLE_EQ(codec.DecodeSquared(BigInt(2250000)), 2.25);  // 1.5^2
}

TEST(FixedBaseTest, MatchesPowModOnRandomExponents) {
  SecureRandom rng(314);
  BigInt modulus = rng.NextPrime(192) * rng.NextPrime(192);
  BigInt base = rng.NextBelow(modulus - BigInt(2)) + BigInt(2);
  FixedBaseTable table(base, modulus, /*max_exp_bits=*/200);
  ASSERT_TRUE(table.ready());
  for (int i = 0; i < 20; ++i) {
    BigInt exp = rng.NextBits(200);
    auto got = table.Pow(exp);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, BigInt::PowMod(base, exp, modulus)) << exp.ToString();
  }
}

TEST(FixedBaseTest, EdgeExponents) {
  BigInt base(7), modulus(1000003);
  FixedBaseTable table(base, modulus, /*max_exp_bits=*/64, /*window_bits=*/4);
  ASSERT_TRUE(table.ready());
  EXPECT_EQ(*table.Pow(BigInt(0)), BigInt(1));
  EXPECT_EQ(*table.Pow(BigInt(1)), base);
  // Exactly max_exp_bits wide (2^64 - 1) must still be accepted.
  BigInt max_exp = *BigInt::FromString("18446744073709551615");
  EXPECT_EQ(*table.Pow(max_exp), BigInt::PowMod(base, max_exp, modulus));
}

TEST(FixedBaseTest, RejectsBadExponentsAndUnreadyTable) {
  BigInt base(5), modulus(104729);
  FixedBaseTable table(base, modulus, /*max_exp_bits=*/32);
  ASSERT_TRUE(table.ready());
  EXPECT_FALSE(table.Pow(BigInt(-1)).ok());
  EXPECT_FALSE(table.Pow(BigInt(1LL << 32)).ok());  // 33 bits wide
  FixedBaseTable empty;
  EXPECT_FALSE(empty.ready());
  EXPECT_FALSE(empty.Pow(BigInt(3)).ok());
}

TEST(PackingTest, PlanComputesSlotCount) {
  auto layout = PackingLayout::Plan(/*modulus_bits=*/256, /*slot_bits=*/64);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->slot_bits, 64);
  EXPECT_EQ(layout->num_slots, 3);  // (256 - 2) / 64
  EXPECT_FALSE(PackingLayout::Plan(256, 7).ok());    // below the minimum width
  EXPECT_FALSE(PackingLayout::Plan(32, 64).ok());    // no full slot fits
}

TEST(PackingTest, PackUnpackRoundTrip) {
  auto layout = PackingLayout::Plan(256, 64);
  ASSERT_TRUE(layout.ok());
  std::vector<BigInt> values = {BigInt(0), BigInt(123456789),
                                layout->SlotWeight(1) - BigInt(1)};
  auto packed = PackSlots(values, *layout);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  auto back = UnpackSlots(*packed, values.size(), *layout);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, values);
  // Unpacking fewer slots than were packed leaves a nonzero residue.
  EXPECT_FALSE(UnpackSlots(*packed, 2, *layout).ok());
}

TEST(PackingTest, RejectsOverflowNegativeAndTooMany) {
  auto layout = PackingLayout::Plan(256, 64);
  ASSERT_TRUE(layout.ok());
  const BigInt slot_cap = layout->SlotWeight(1);  // 2^64
  EXPECT_TRUE(layout->SlotHolds(slot_cap - BigInt(1)));
  EXPECT_FALSE(layout->SlotHolds(slot_cap));
  EXPECT_FALSE(layout->SlotHolds(BigInt(-1)));
  EXPECT_FALSE(PackSlots({slot_cap}, *layout).ok());
  EXPECT_FALSE(PackSlots({BigInt(-1)}, *layout).ok());
  EXPECT_FALSE(PackSlots({BigInt(1), BigInt(2), BigInt(3), BigInt(4)},
                         *layout).ok());
  EXPECT_FALSE(UnpackSlots(BigInt(-5), 1, *layout).ok());
  EXPECT_FALSE(UnpackSlots(BigInt(7), 4, *layout).ok());
}

TEST_F(PaillierTest, PackedFoldMatchesScalarSquaredDistances) {
  // Satellite property test: pack the x² vector, fold in Enc(-2x_i)·(y_i·W_i)
  // and the packed y² vector homomorphically, decrypt ONCE, unpack — every
  // slot must equal the scalar (x_i - y_i)², including at the fixed-point
  // extremes where |x| + |y| squared fills the 64-bit slot exactly.
  auto layout = PackingLayout::Plan(pub_.modulus_bits(), 64);
  ASSERT_TRUE(layout.ok());
  const size_t k = static_cast<size_t>(layout->num_slots);
  ASSERT_GE(k, 3u);
  SecureRandom vals(31);
  const BigInt kMax((1LL << 31) - 1);  // |x|+|y| <= 2^32-1 keeps (x-y)² in-slot
  for (int round = 0; round < 6; ++round) {
    std::vector<BigInt> xs(k), ys(k);
    if (round == 0) {
      // Extremes: the carry-safety boundary, zero, and negative encodings
      // (FixedPointCodec turns -2.5 into -2500 — signed values flow through
      // Enc(-2x) and y·W as-is).
      xs = {kMax, BigInt(0), FixedPointCodec(1000).Encode(-2.5)};
      ys = {-kMax - BigInt(1), BigInt(0), FixedPointCodec(1000).Encode(1.5)};
      for (size_t i = 3; i < k; ++i) xs[i] = ys[i] = BigInt(0);
    } else {
      for (size_t i = 0; i < k; ++i) {
        xs[i] = vals.NextBelow(kMax) - vals.NextBelow(kMax);
        ys[i] = vals.NextBelow(kMax) - vals.NextBelow(kMax);
      }
    }
    std::vector<BigInt> x2(k), y2(k);
    for (size_t i = 0; i < k; ++i) {
      x2[i] = xs[i] * xs[i];
      y2[i] = ys[i] * ys[i];
    }
    auto px2 = PackSlots(x2, *layout);
    auto py2 = PackSlots(y2, *layout);
    ASSERT_TRUE(px2.ok() && py2.ok());
    auto cx2 = pub_.Encrypt(*px2, rng_);
    auto cy2 = pub_.Encrypt(*py2, rng_);
    ASSERT_TRUE(cx2.ok() && cy2.ok());
    BigInt acc = pub_.Add(*cx2, *cy2);
    for (size_t i = 0; i < k; ++i) {
      auto cm2x = pub_.EncryptSigned(BigInt(-2) * xs[i], rng_);
      ASSERT_TRUE(cm2x.ok());
      acc = pub_.Add(acc, pub_.ScalarMul(*cm2x, ys[i] * layout->SlotWeight(i)));
    }
    auto packed = priv_.Decrypt(acc);
    ASSERT_TRUE(packed.ok()) << packed.status().ToString();
    auto slots = UnpackSlots(*packed, k, *layout);
    ASSERT_TRUE(slots.ok()) << slots.status().ToString();
    for (size_t i = 0; i < k; ++i) {
      BigInt d = xs[i] - ys[i];
      EXPECT_EQ((*slots)[i], d * d) << "round " << round << " slot " << i;
    }
  }
}

TEST_F(RandomizerPoolTest, FixedBaseRandomizersAreValidUnits) {
  RandomizerPool fast(pub_, 4, 21);
  RandomizerPool slow(pub_, 4, 21, /*use_fixed_base=*/false);
  EXPECT_TRUE(fast.uses_fixed_base());
  EXPECT_FALSE(slow.uses_fixed_base());
  fast.Prefill(4);
  slow.Prefill(4);
  for (int i = 0; i < 4; ++i) {
    // A valid randomizer is a unit r^n mod n²: it decrypts (as a ciphertext)
    // to 0, whichever path produced it.
    EXPECT_EQ(*priv_.Decrypt(fast.Take()), BigInt(0));
    EXPECT_EQ(*priv_.Decrypt(slow.Take()), BigInt(0));
  }
}

TEST_F(RandomizerPoolTest, HitRateGaugeTracksServedFraction) {
  obs::MetricsRegistry registry;
  RandomizerPool pool(pub_, 3, 23);
  pool.AttachMetrics(&registry);
  pool.Prefill(3);
  pub_.AttachRandomizerPool(&pool);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pub_.Encrypt(BigInt(i), rng_).ok());
  }
  // 3 hits, 1 miss -> 75% served from the pool.
  EXPECT_DOUBLE_EQ(registry.GaugeValues().at("crypto.pool_hit_rate"), 0.75);
}

}  // namespace
}  // namespace hprl::crypto
