// Crash-consistency tests for the durable session artifacts: the binary
// session journal (src/core/journal.h) and the JSON SMC checkpoint
// (src/core/checkpoint.h).
//
// The invariant under test is "reject-and-restart-clean": a damaged file —
// truncated at ANY length, or with ANY single bit flipped — must never
// produce a wrong resume. For the checksummed journal that means every such
// mutation fails the load outright; for the checkpoint a mutation either
// fails the load or (if it survives parsing AND the canonical-body checksum)
// restores exactly the values that were saved.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/journal.h"

namespace hprl {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

SessionJournal MakeJournal() {
  SessionJournal j;
  j.fingerprint = 0xFEEDFACECAFEBEEFull;
  j.epoch = 7;
  j.pairs_done = 1200;
  j.smc_matched = 61;
  j.quarantined = 3;
  j.shards.push_back({0, 20, 640});
  j.shards.push_back({1, 18, 560});
  j.matched_row_pairs = {{4, 9}, {17, 2}, {100000, 424242}};
  return j;
}

bool SameJournal(const SessionJournal& a, const SessionJournal& b) {
  if (a.fingerprint != b.fingerprint || a.epoch != b.epoch ||
      a.pairs_done != b.pairs_done || a.smc_matched != b.smc_matched ||
      a.quarantined != b.quarantined ||
      a.matched_row_pairs != b.matched_row_pairs ||
      a.shards.size() != b.shards.size()) {
    return false;
  }
  for (size_t i = 0; i < a.shards.size(); ++i) {
    if (a.shards[i].shard != b.shards[i].shard ||
        a.shards[i].batches_done != b.shards[i].batches_done ||
        a.shards[i].pairs_done != b.shards[i].pairs_done) {
      return false;
    }
  }
  return true;
}

TEST(SessionJournalTest, RoundTripsEveryField) {
  const std::string path = TempPath("journal_roundtrip.jnl");
  const SessionJournal j = MakeJournal();
  ASSERT_TRUE(SaveSessionJournal(path, j).ok());
  auto back = LoadSessionJournal(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(SameJournal(*back, j));
  std::remove(path.c_str());
}

TEST(SessionJournalTest, MissingFileIsNotFoundNeverAnError) {
  auto missing = LoadSessionJournal(TempPath("no_such_journal.jnl"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SessionJournalTest, EmptyJournalRoundTrips) {
  const std::string path = TempPath("journal_empty.jnl");
  SessionJournal j;
  j.fingerprint = 1;
  ASSERT_TRUE(SaveSessionJournal(path, j).ok());
  auto back = LoadSessionJournal(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(SameJournal(*back, j));
  std::remove(path.c_str());
}

TEST(SessionJournalTest, TruncationAtEveryLengthIsRejected) {
  const std::string path = TempPath("journal_trunc.jnl");
  ASSERT_TRUE(SaveSessionJournal(path, MakeJournal()).ok());
  const std::string whole = ReadAll(path);
  ASSERT_GT(whole.size(), 4u);
  for (size_t n = 0; n < whole.size(); ++n) {
    WriteAll(path, whole.substr(0, n));
    auto load = LoadSessionJournal(path);
    ASSERT_FALSE(load.ok()) << "truncated to " << n << " of " << whole.size()
                            << " bytes was accepted";
    EXPECT_EQ(load.status().code(), StatusCode::kFailedPrecondition)
        << "at " << n << ": " << load.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(SessionJournalTest, EverySingleBitFlipIsRejected) {
  const std::string path = TempPath("journal_flip.jnl");
  ASSERT_TRUE(SaveSessionJournal(path, MakeJournal()).ok());
  const std::string whole = ReadAll(path);
  // The trailing FNV-1a covers every preceding byte and the crc bytes
  // themselves invalidate on flip, so NO single-bit damage may load.
  for (size_t i = 0; i < whole.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = whole;
      damaged[i] = static_cast<char>(damaged[i] ^ (1 << bit));
      WriteAll(path, damaged);
      auto load = LoadSessionJournal(path);
      ASSERT_FALSE(load.ok())
          << "bit " << bit << " of byte " << i << " flipped and accepted";
      EXPECT_EQ(load.status().code(), StatusCode::kFailedPrecondition);
    }
  }
  std::remove(path.c_str());
}

TEST(SessionJournalTest, TrailingGarbageIsRejected) {
  const std::string path = TempPath("journal_trailing.jnl");
  ASSERT_TRUE(SaveSessionJournal(path, MakeJournal()).ok());
  WriteAll(path, ReadAll(path) + std::string(1, '\0'));
  auto load = LoadSessionJournal(path);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------

SmcCheckpoint MakeCheckpoint() {
  SmcCheckpoint cp;
  cp.fingerprint = 0x0123456789ABCDEFull;
  cp.pairs_done = 800;
  cp.smc_matched = 44;
  cp.quarantined = 2;
  cp.matched_row_pairs = {{1, 2}, {33, 7}, {5, 123456}};
  return cp;
}

bool SameCheckpoint(const SmcCheckpoint& a, const SmcCheckpoint& b) {
  return a.fingerprint == b.fingerprint && a.pairs_done == b.pairs_done &&
         a.smc_matched == b.smc_matched && a.quarantined == b.quarantined &&
         a.matched_row_pairs == b.matched_row_pairs;
}

TEST(CheckpointCorruptionTest, TruncationAtEveryLengthNeverResumesWrong) {
  const std::string path = TempPath("ckpt_trunc.json");
  const SmcCheckpoint cp = MakeCheckpoint();
  ASSERT_TRUE(SaveSmcCheckpoint(path, cp).ok());
  const std::string whole = ReadAll(path);
  for (size_t n = 0; n < whole.size(); ++n) {
    WriteAll(path, whole.substr(0, n));
    auto load = LoadSmcCheckpoint(path);
    // A prefix that still parses can only be trailing-whitespace loss; any
    // cut into the document itself must fail, and nothing may resume wrong.
    if (load.ok()) {
      EXPECT_TRUE(SameCheckpoint(*load, cp))
          << "truncated to " << n << " of " << whole.size()
          << " bytes and resumed with different values";
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointCorruptionTest, EverySingleBitFlipFailsOrRestoresExactly) {
  const std::string path = TempPath("ckpt_flip.json");
  const SmcCheckpoint cp = MakeCheckpoint();
  ASSERT_TRUE(SaveSmcCheckpoint(path, cp).ok());
  const std::string whole = ReadAll(path);
  for (size_t i = 0; i < whole.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = whole;
      damaged[i] = static_cast<char>(damaged[i] ^ (1 << bit));
      WriteAll(path, damaged);
      auto load = LoadSmcCheckpoint(path);
      // The canonical-body checksum closes the "flip that still parses"
      // hole: anything that loads must be byte-for-byte the saved state.
      if (load.ok()) {
        EXPECT_TRUE(SameCheckpoint(*load, cp))
            << "bit " << bit << " of byte " << i
            << " flipped and resumed with different values";
      }
    }
  }
  std::remove(path.c_str());
}

TEST(CheckpointCorruptionTest, LegacyCheckpointWithoutCrcIsRejected) {
  const std::string path = TempPath("ckpt_nocrc.json");
  ASSERT_TRUE(SaveSmcCheckpoint(path, MakeCheckpoint()).ok());
  std::string doc = ReadAll(path);
  const size_t crc = doc.find(",\"crc\":");
  ASSERT_NE(crc, std::string::npos);
  const size_t end = doc.rfind('}');
  ASSERT_NE(end, std::string::npos);
  WriteAll(path, doc.substr(0, crc) + doc.substr(end));
  EXPECT_FALSE(LoadSmcCheckpoint(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hprl
