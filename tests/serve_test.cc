// Streaming incremental linkage service (src/serve): property tests that the
// incremental blocker and the service reproduce from-scratch results at every
// step of randomized insert/update/delete walks, plus admission-control,
// crash-replay and serve-journal durability checks (docs/SERVICE.md).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "adult/adult.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/journal.h"
#include "linkage/match_rule.h"
#include "linkage/oracle.h"
#include "linkage/slack.h"
#include "serve/generalize.h"
#include "serve/incremental_blocker.h"
#include "serve/service.h"

namespace hprl {
namespace {

using serve::AffectedPair;
using serve::DeltaOp;
using serve::DeltaStatus;
using serve::IncrementalBlocker;
using serve::LinkageService;
using serve::RecordDelta;
using serve::ServiceOptions;
using serve::Side;
using serve::TenantSnapshot;

constexpr int kQids = 5;

struct ServeFixture {
  adult::AdultHierarchies h;
  Table source;
  MatchRule rule;
  std::vector<VghPtr> hierarchies;

  explicit ServeFixture(int rows = 200, uint64_t seed = 21)
      : h(adult::BuildAdultHierarchies()),
        source(adult::GenerateAdult(rows, seed, h)) {
    std::vector<VghPtr> all;
    for (const auto& n : adult::AdultQidNames()) all.push_back(h.ByName(n));
    auto r = MakeUniformRule(source.schema(), adult::AdultQidNames(), all,
                             kQids, 0.05);
    HPRL_CHECK(r.ok());
    rule = std::move(r).value();
    hierarchies.assign(all.begin(), all.begin() + kQids);
  }

  GenSequence Gen(int64_t row, int level = 1) const {
    auto seq = serve::GeneralizeRecord(source.row(row), rule, hierarchies,
                                       level);
    HPRL_CHECK(seq.ok());
    return std::move(seq).value();
  }
};

// ---------------------------------------------------------------------------
// IncrementalBlocker: the memoized incremental state must be bit-identical to
// the from-scratch slack decision at EVERY step of a random mutation walk.

/// One shadow side of the walk: row id -> the sequence the blocker holds.
using ShadowSide = std::map<int64_t, GenSequence>;

void ExpectMatrixMatchesScratch(IncrementalBlocker& blocker,
                                const ShadowSide& shadow_r,
                                const ShadowSide& shadow_s,
                                const MatchRule& rule) {
  ASSERT_EQ(blocker.live_rows(Side::kR),
            static_cast<int64_t>(shadow_r.size()));
  ASSERT_EQ(blocker.live_rows(Side::kS),
            static_cast<int64_t>(shadow_s.size()));
  // Preview never mutates row bookkeeping or memoized verdicts, so reading
  // the full matrix through it is exactly "what would the blocker say now".
  for (const auto& [r_id, r_seq] : shadow_r) {
    std::vector<AffectedPair> row =
        blocker.Preview(Side::kR, r_id, r_seq);
    ASSERT_EQ(row.size(), shadow_s.size());
    size_t i = 0;
    for (const auto& [s_id, s_seq] : shadow_s) {
      ASSERT_EQ(row[i].r_id, r_id);
      // Other-side ids ascend (std::map order), pairs in (r, s) orientation.
      ASSERT_EQ(row[i].s_id, s_id);
      EXPECT_EQ(row[i].label, SlackDecide(r_seq, s_seq, rule))
          << "pair (" << r_id << "," << s_id << ")";
      ++i;
    }
  }
}

TEST(IncrementalBlockerProperty, RandomWalksMatchScratchAtEveryStep) {
  ServeFixture fx;
  for (uint64_t seed : {3u, 17u, 92u}) {
    Rng rng(seed);
    IncrementalBlocker blocker(fx.rule);
    ShadowSide shadow[2];
    int64_t next_id[2] = {0, 0};
    for (int step = 0; step < 70; ++step) {
      const int side_i = static_cast<int>(rng.NextBounded(2));
      Side side = side_i == 0 ? Side::kR : Side::kS;
      ShadowSide& mine = shadow[side_i];
      const double roll = rng.NextDouble();
      if (roll < 0.2 && !mine.empty()) {  // delete
        auto it = mine.begin();
        std::advance(it, rng.NextBounded(mine.size()));
        blocker.Erase(side, it->first);
        mine.erase(it);
      } else {
        int64_t id;
        if (roll < 0.4 && !mine.empty()) {  // update: reuse a live id
          auto it = mine.begin();
          std::advance(it, rng.NextBounded(mine.size()));
          id = it->first;
        } else {  // insert
          id = next_id[side_i]++;
        }
        GenSequence seq =
            fx.Gen(rng.NextBounded(fx.source.num_rows()));
        std::vector<AffectedPair> pairs = blocker.Upsert(side, id, seq);
        mine[id] = seq;
        // The upsert's own affected pairs are the delta row against every
        // live other-side row, already in final orientation.
        const ShadowSide& other = shadow[1 - side_i];
        ASSERT_EQ(pairs.size(), other.size());
        for (const AffectedPair& p : pairs) {
          const GenSequence& r_seq =
              side == Side::kR ? seq : shadow[0].at(p.r_id);
          const GenSequence& s_seq =
              side == Side::kS ? seq : shadow[1].at(p.s_id);
          EXPECT_EQ(p.label, SlackDecide(r_seq, s_seq, fx.rule));
        }
      }
      ExpectMatrixMatchesScratch(blocker, shadow[0], shadow[1], fx.rule);
    }
  }
}

TEST(IncrementalBlockerProperty, PreviewIsUnobservable) {
  ServeFixture fx;
  IncrementalBlocker blocker(fx.rule);
  blocker.Upsert(Side::kS, 0, fx.Gen(0));
  blocker.Upsert(Side::kS, 1, fx.Gen(1));

  GenSequence probe = fx.Gen(2);
  std::vector<AffectedPair> preview = blocker.Preview(Side::kR, 7, probe);
  EXPECT_EQ(blocker.live_rows(Side::kR), 0);  // not committed
  // Committing afterwards yields the very labels the preview promised.
  std::vector<AffectedPair> committed = blocker.Upsert(Side::kR, 7, probe);
  ASSERT_EQ(preview.size(), committed.size());
  for (size_t i = 0; i < preview.size(); ++i) {
    EXPECT_EQ(preview[i].r_id, committed[i].r_id);
    EXPECT_EQ(preview[i].s_id, committed[i].s_id);
    EXPECT_EQ(preview[i].label, committed[i].label);
  }
}

// ---------------------------------------------------------------------------
// LinkageService: at every step of a randomized multi-tenant walk, the
// settled link set must equal the exact plaintext linkage over the live
// records — M pairs by soundness, U pairs through the (exact) oracle.

struct WalkState {
  // (tenant, side) -> row id -> source row driving the record.
  std::map<std::pair<std::string, int>, std::map<int64_t, int64_t>> live;
  std::map<std::pair<std::string, int>, int64_t> next_id;
};

RecordDelta MakeUpsert(const ServeFixture& fx, const std::string& tenant,
                       Side side, int64_t row_id, int64_t source_row) {
  RecordDelta d;
  d.op = DeltaOp::kUpsert;
  d.side = side;
  d.tenant = tenant;
  d.row_id = row_id;
  d.record = fx.source.row(source_row);
  return d;
}

std::set<serve::Link> ExpectedLinks(const ServeFixture& fx,
                                    const WalkState& st,
                                    const std::string& tenant) {
  std::set<serve::Link> expect;
  auto r_it = st.live.find({tenant, 0});
  auto s_it = st.live.find({tenant, 1});
  if (r_it == st.live.end() || s_it == st.live.end()) return expect;
  for (const auto& [r_id, r_row] : r_it->second) {
    for (const auto& [s_id, s_row] : s_it->second) {
      if (RecordsMatch(fx.source.row(r_row), fx.source.row(s_row), fx.rule)) {
        expect.insert({r_id, s_id});
      }
    }
  }
  return expect;
}

TEST(LinkageServiceProperty, WalkLinksEqualExactPlaintextLinkage) {
  ServeFixture fx;
  ServiceOptions opts;
  opts.rule = fx.rule;
  opts.hierarchies = fx.hierarchies;
  opts.gen_level = 1;
  opts.tenant_allowance = 1'000'000;
  opts.smc_batch_pairs = 3;  // exercise CompareBatch chunking
  const std::vector<std::string> tenants = {"acme", "globex"};

  for (uint64_t seed : {5u, 41u}) {
    CountingPlaintextOracle oracle(fx.rule);
    LinkageService svc(opts, &oracle);
    Rng rng(seed);
    WalkState st;
    for (int step = 0; step < 60; ++step) {
      const std::string& tenant = tenants[step % tenants.size()];
      const int side_i = static_cast<int>(rng.NextBounded(2));
      Side side = side_i == 0 ? Side::kR : Side::kS;
      auto& mine = st.live[{tenant, side_i}];
      const double roll = rng.NextDouble();
      RecordDelta d;
      if (roll < 0.18 && !mine.empty()) {
        auto it = mine.begin();
        std::advance(it, rng.NextBounded(mine.size()));
        d.op = DeltaOp::kErase;
        d.side = side;
        d.tenant = tenant;
        d.row_id = it->first;
        mine.erase(it);
      } else {
        int64_t id;
        if (roll < 0.36 && !mine.empty()) {
          auto it = mine.begin();
          std::advance(it, rng.NextBounded(mine.size()));
          id = it->first;
        } else {
          id = st.next_id[{tenant, side_i}]++;
        }
        int64_t src = rng.NextBounded(fx.source.num_rows());
        d = MakeUpsert(fx, tenant, side, id, src);
        mine[id] = src;
      }
      auto r = svc.Apply(d);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->status, DeltaStatus::kApplied);

      for (const TenantSnapshot& snap : svc.Snapshot()) {
        std::set<serve::Link> got(snap.links.begin(), snap.links.end());
        EXPECT_EQ(got, ExpectedLinks(fx, st, snap.name))
            << "tenant " << snap.name << " at step " << step;
      }
    }
    EXPECT_EQ(svc.settled_deltas(), 60);
  }
}

// ---------------------------------------------------------------------------
// Admission control: exhaustion queues or rejects with a distinct status —
// never a silent drop — and TopUp drains the queue FIFO.

TEST(LinkageServiceAdmission, ExhaustionQueuesThenTopUpDrains) {
  ServeFixture fx;
  ServiceOptions opts;
  opts.rule = fx.rule;
  opts.hierarchies = fx.hierarchies;
  opts.tenant_allowance = 0;  // every straddling pair is inadmissible
  opts.max_queued = 2;
  CountingPlaintextOracle oracle(fx.rule);
  LinkageService svc(opts, &oracle);

  // Seed an S row so R inserts produce at least one affected pair. The same
  // source row on both sides guarantees the pair is not a slack mismatch.
  ASSERT_TRUE(svc.Apply(MakeUpsert(fx, "t", Side::kS, 0, 3)).ok());

  std::vector<DeltaStatus> seen;
  for (int i = 0; i < 4; ++i) {
    auto r = svc.Apply(MakeUpsert(fx, "t", Side::kR, i, 3));
    ASSERT_TRUE(r.ok());
    seen.push_back(r->status);
  }
  // The identical-record pair straddles or matches; with zero allowance a
  // U preview queues until the queue cap, then rejects.
  int64_t queued = 0, rejected = 0, applied = 0;
  for (DeltaStatus s : seen) {
    queued += s == DeltaStatus::kQueued;
    rejected += s == DeltaStatus::kRejectedQueue;
    applied += s == DeltaStatus::kApplied;
  }
  EXPECT_EQ(queued, 2);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(svc.settled_deltas(), 5);  // every outcome settled, none lost

  auto drained = svc.TopUp("t", 1'000);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->status, DeltaStatus::kApplied);
  std::vector<TenantSnapshot> snaps = svc.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].queued, 0);
  // Both queued R rows linked against the identical S row.
  EXPECT_EQ(snaps[0].links.size(), 2u);
}

TEST(LinkageServiceAdmission, ZeroQueueRejectsWithAllowanceStatus) {
  ServeFixture fx;
  ServiceOptions opts;
  opts.rule = fx.rule;
  opts.hierarchies = fx.hierarchies;
  opts.tenant_allowance = 0;
  opts.max_queued = 0;
  CountingPlaintextOracle oracle(fx.rule);
  LinkageService svc(opts, &oracle);
  ASSERT_TRUE(svc.Apply(MakeUpsert(fx, "t", Side::kS, 0, 3)).ok());
  auto r = svc.Apply(MakeUpsert(fx, "t", Side::kR, 0, 3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, DeltaStatus::kRejectedAllowance);
}

// ---------------------------------------------------------------------------
// Crash replay: replaying the settled prefix against the journaled link sets
// reproduces the pre-crash state without spending a single oracle call, and
// the continued run is indistinguishable from the uninterrupted one.

TEST(LinkageServiceReplay, ReplayReproducesStateWithoutOracleSpend) {
  ServeFixture fx;
  ServiceOptions opts;
  opts.rule = fx.rule;
  opts.hierarchies = fx.hierarchies;
  opts.tenant_allowance = 1'000'000;

  // A deterministic delta stream with links in it.
  std::vector<RecordDelta> deltas;
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    int64_t src = rng.NextBounded(fx.source.num_rows());
    Side side = i % 2 == 0 ? Side::kR : Side::kS;
    deltas.push_back(MakeUpsert(fx, "t", side, i / 2, src));
    if (i % 7 == 3) {  // identical record on the other side: a sure link
      deltas.push_back(MakeUpsert(fx, "t",
                                  side == Side::kR ? Side::kS : Side::kR,
                                  1000 + i, src));
    }
  }
  const size_t cut = deltas.size() / 2;

  CountingPlaintextOracle oracle1(fx.rule);
  LinkageService uninterrupted(opts, &oracle1);
  for (const RecordDelta& d : deltas) {
    ASSERT_TRUE(uninterrupted.Apply(d).ok());
  }

  // "Crash" after `cut` deltas: capture the journaled state at the cut by
  // running a fresh service over the prefix.
  CountingPlaintextOracle oracle2(fx.rule);
  LinkageService pre_crash(opts, &oracle2);
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(pre_crash.Apply(deltas[i]).ok());
  }
  std::map<std::string, std::set<serve::Link>> journaled;
  std::vector<TenantSnapshot> cut_snaps = pre_crash.Snapshot();
  for (const TenantSnapshot& t : cut_snaps) {
    journaled[t.name] =
        std::set<serve::Link>(t.links.begin(), t.links.end());
  }

  // The resumed incarnation replays the prefix from the journal…
  CountingPlaintextOracle oracle3(fx.rule);
  LinkageService resumed(opts, &oracle3);
  resumed.BeginReplay(journaled);
  for (size_t i = 0; i < cut; ++i) {
    ASSERT_TRUE(resumed.Apply(deltas[i]).ok());
  }
  resumed.EndReplay();
  EXPECT_EQ(oracle3.invocations(), 0) << "replay must not spend the oracle";

  // …reproducing allowance/spend/links exactly…
  std::vector<TenantSnapshot> resumed_snaps = resumed.Snapshot();
  ASSERT_EQ(resumed_snaps.size(), cut_snaps.size());
  for (size_t i = 0; i < cut_snaps.size(); ++i) {
    EXPECT_EQ(resumed_snaps[i].name, cut_snaps[i].name);
    EXPECT_EQ(resumed_snaps[i].allowance_remaining,
              cut_snaps[i].allowance_remaining);
    EXPECT_EQ(resumed_snaps[i].smc_pairs_spent, cut_snaps[i].smc_pairs_spent);
    EXPECT_EQ(resumed_snaps[i].links, cut_snaps[i].links);
  }

  // …and the continued run converges to the uninterrupted one bit for bit.
  for (size_t i = cut; i < deltas.size(); ++i) {
    ASSERT_TRUE(resumed.Apply(deltas[i]).ok());
  }
  std::vector<TenantSnapshot> a = resumed.Snapshot();
  std::vector<TenantSnapshot> b = uninterrupted.Snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].links, b[i].links);
    EXPECT_EQ(a[i].allowance_remaining, b[i].allowance_remaining);
    EXPECT_EQ(a[i].smc_pairs_spent, b[i].smc_pairs_spent);
  }
}

// ---------------------------------------------------------------------------
// ServeJournal durability: same contract as the session journal — atomic,
// checksummed, rejected whole on any damage.

class ServeJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("serve_jnl_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "serve.jnl").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static ServeJournal Sample() {
    ServeJournal j;
    j.fingerprint = 0xFEEDFACE12345678ull;
    j.epoch = 3;
    j.settled_deltas = 41;
    j.quarantined = 2;
    ServeTenantState a;
    a.name = "acme";
    a.allowance_remaining = 17;
    a.smc_pairs_spent = 83;
    a.links = {{0, 4}, {2, 2}, {9, 1}};
    ServeTenantState b;
    b.name = "globex";
    b.allowance_remaining = 0;
    b.smc_pairs_spent = 100;
    j.tenants = {a, b};
    return j;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ServeJournalTest, RoundTrip) {
  ServeJournal j = Sample();
  ASSERT_TRUE(SaveServeJournal(path_, j).ok());
  auto loaded = LoadServeJournal(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, j.fingerprint);
  EXPECT_EQ(loaded->epoch, j.epoch);
  EXPECT_EQ(loaded->settled_deltas, j.settled_deltas);
  EXPECT_EQ(loaded->quarantined, j.quarantined);
  ASSERT_EQ(loaded->tenants.size(), 2u);
  EXPECT_EQ(loaded->tenants[0].name, "acme");
  EXPECT_EQ(loaded->tenants[0].links, j.tenants[0].links);
  EXPECT_EQ(loaded->tenants[1].smc_pairs_spent, 100);
}

TEST_F(ServeJournalTest, MissingFileIsNotFound) {
  auto loaded = LoadServeJournal(path_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(ServeJournalTest, TruncationIsRejectedWhole) {
  ASSERT_TRUE(SaveServeJournal(path_, Sample()).ok());
  auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 5);
  auto loaded = LoadServeJournal(path_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeJournalTest, EveryBitFlipIsRejected) {
  ASSERT_TRUE(SaveServeJournal(path_, Sample()).ok());
  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip a byte in every 7-byte stride (covers header, counts, payload,
  // checksum) — each corruption must fail the load.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out << damaged;
    }
    auto loaded = LoadServeJournal(path_);
    EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition)
        << "bit flip at byte " << pos << " was not detected";
  }
}

}  // namespace
}  // namespace hprl
