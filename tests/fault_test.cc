// Fault-injection matrix for the self-healing SMC layer: every deterministic
// fault schedule (drops, corruption, delays, crashes — smc/fault.h) must
// leave the pipeline with 100% precision and bit-identical results across
// thread counts; the zero-fault path must be byte-identical to a build
// without the fault layer; and a killed, checkpointed drain must resume to
// the same HybridResult as an uninterrupted run.
//
// HPRL_FAULT_SEED overrides the fault schedule seed (default 11) so the
// verify script can sweep several schedules without recompiling.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cli/spec.h"
#include "core/checkpoint.h"
#include "core/experiment.h"
#include "core/session.h"
#include "smc/fault.h"
#include "smc/smc_oracle.h"

namespace hprl {
namespace {

uint64_t FaultSeed() {
  const char* env = std::getenv("HPRL_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 11;
}

struct Workload {
  ExperimentData data;
  AnonymizedTable anon_r;
  AnonymizedTable anon_s;
  MatchRule rule;
};

const Workload& SmallWorkload() {
  static const Workload* w = [] {
    auto data = PrepareAdultData(80, 77);
    EXPECT_TRUE(data.ok());
    auto cfg = MakeAdultAnonConfig(*data, 3, 4);
    EXPECT_TRUE(cfg.ok());
    auto anonymizer = MakeMaxEntropyAnonymizer(*cfg);
    auto anon_r = anonymizer->Anonymize(data->split.d1);
    auto anon_s = anonymizer->Anonymize(data->split.d2);
    EXPECT_TRUE(anon_r.ok() && anon_s.ok());
    std::vector<VghPtr> vghs;
    for (const auto& n : adult::AdultQidNames()) {
      vghs.push_back(data->hierarchies.ByName(n));
    }
    auto rule =
        MakeUniformRule(data->schema, adult::AdultQidNames(), vghs, 3, 0.05);
    EXPECT_TRUE(rule.ok());
    return new Workload{std::move(data).value(), std::move(anon_r).value(),
                        std::move(anon_s).value(), std::move(rule).value()};
  }();
  return *w;
}

smc::SmcConfig TestSmcConfig() {
  smc::SmcConfig cfg;
  cfg.key_bits = 256;  // small key keeps the suite fast; semantics equal
  cfg.test_seed = 11;
  return cfg;
}

struct PipelineOutcome {
  HybridResult result;
  int64_t oracle_quarantined = 0;
  int64_t oracle_restarts = 0;
  std::map<std::string, int64_t> counters;
};

PipelineOutcome RunPipeline(const smc::FaultPlan& plan, int smc_threads,
                            int max_retries = 3,
                            const std::string& checkpoint = "",
                            int64_t max_batches = 0,
                            Status* failure = nullptr) {
  const Workload& w = SmallWorkload();
  smc::SmcConfig cfg = TestSmcConfig();
  cfg.fault_plan = plan;
  cfg.max_retries = max_retries;
  smc::SmcMatchOracle oracle(cfg, w.rule, smc_threads);
  EXPECT_TRUE(oracle.Init().ok());
  obs::MetricsRegistry registry;
  HybridConfig hc;
  hc.rule = w.rule;
  hc.smc_allowance_fraction = 1.0;
  hc.collect_matches = true;
  hc.smc_batch_pairs = 16;  // several checkpointable batches per drain
  LinkageSession session;
  session.WithTables(w.data.split.d1, w.data.split.d2)
      .WithReleases(w.anon_r, w.anon_s)
      .WithConfig(hc)
      .WithOracle(oracle)
      .WithMetrics(&registry);
  if (!checkpoint.empty()) session.WithCheckpoint(checkpoint);
  if (max_batches > 0) session.WithSmcBatchLimit(max_batches);
  auto out = session.Run();
  if (failure != nullptr) {
    *failure = out.status();
    if (!out.ok()) return {};
  }
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return {};
  return {std::move(out).value(), oracle.pairs_quarantined(),
          oracle.worker_restarts(), registry.CounterValues()};
}

std::set<std::pair<int64_t, int64_t>> PairSet(const HybridResult& r) {
  return {r.matched_row_pairs.begin(), r.matched_row_pairs.end()};
}

void ExpectIdenticalOutcome(const PipelineOutcome& a,
                            const PipelineOutcome& b) {
  EXPECT_EQ(a.result.matched_row_pairs, b.result.matched_row_pairs);
  EXPECT_EQ(a.result.smc_matched, b.result.smc_matched);
  EXPECT_EQ(a.result.smc_processed, b.result.smc_processed);
  EXPECT_EQ(a.result.quarantined_pairs, b.result.quarantined_pairs);
  EXPECT_EQ(a.result.reported_matches, b.result.reported_matches);
  EXPECT_EQ(a.result.unprocessed_pairs, b.result.unprocessed_pairs);
  EXPECT_EQ(a.oracle_quarantined, b.oracle_quarantined);
  // The fault schedule itself is thread-count invariant: same injections,
  // same healing work.
  for (const char* name :
       {"smc.retries", "smc.faults_injected", "smc.pairs_quarantined"}) {
    const int64_t in_a = a.counters.count(name) ? a.counters.at(name) : 0;
    const int64_t in_b = b.counters.count(name) ? b.counters.at(name) : 0;
    EXPECT_EQ(in_a, in_b) << name;
  }
}

// --- The fault matrix ---

struct Scenario {
  const char* name;
  double drop, corrupt, delay, crash;
  int delay_micros;
};

const Scenario kScenarios[] = {
    {"drop", 0.25, 0, 0, 0, 0},
    {"corrupt", 0, 0.25, 0, 0, 0},
    {"delay", 0, 0, 0.10, 0, 50},
    {"crash", 0, 0, 0, 0.05, 0},
    {"mixed", 0.10, 0.10, 0.05, 0.02, 25},
};

smc::FaultPlan PlanFor(const Scenario& s) {
  smc::FaultPlan plan;
  plan.seed = FaultSeed();
  plan.drop_rate = s.drop;
  plan.corrupt_rate = s.corrupt;
  plan.delay_rate = s.delay;
  plan.delay_micros = s.delay_micros;
  plan.crash_rate = s.crash;
  return plan;
}

// Every schedule completes, keeps 100% precision (reported links are a
// subset of the exact clean run's links), reports quarantined pairs
// separately from budget starvation, and is bit-identical across thread
// counts.
TEST(FaultMatrixTest, EverySchedulePreservesPrecisionAndDeterminism) {
  const PipelineOutcome clean = RunPipeline(smc::FaultPlan{}, 2);
  const auto exact_links = PairSet(clean.result);
  ASSERT_GT(exact_links.size(), 0u);
  EXPECT_EQ(clean.result.quarantined_pairs, 0);
  EXPECT_EQ(clean.oracle_quarantined, 0);

  for (const Scenario& s : kScenarios) {
    SCOPED_TRACE(s.name);
    const smc::FaultPlan plan = PlanFor(s);
    const PipelineOutcome serial = RunPipeline(plan, 1);
    const PipelineOutcome parallel = RunPipeline(plan, 4);

    // Same seed => bit-identical outcome for every thread count.
    ExpectIdenticalOutcome(serial, parallel);

    // 100% precision: every reported link is one the exact oracle reports.
    for (const auto& link : serial.result.matched_row_pairs) {
      EXPECT_TRUE(exact_links.count(link))
          << "false link (" << link.first << "," << link.second << ")";
    }
    EXPECT_LE(serial.result.smc_matched, clean.result.smc_matched);

    // Quarantine accounting: session tally == engine tally, and a
    // quarantined pair still counts as processed (degraded, not
    // budget-starved).
    EXPECT_EQ(serial.result.quarantined_pairs, serial.oracle_quarantined);
    EXPECT_EQ(serial.result.smc_processed, clean.result.smc_processed);
    EXPECT_EQ(serial.result.unprocessed_pairs, clean.result.unprocessed_pairs);
  }
}

// Crashes are the one fault retries cannot heal: the schedule must actually
// quarantine pairs and restart workers, and the run must still complete.
TEST(FaultMatrixTest, CrashesQuarantineAndRestartWorkers) {
  smc::FaultPlan plan;
  plan.seed = FaultSeed();
  plan.crash_rate = 0.05;
  const PipelineOutcome out = RunPipeline(plan, 4);
  EXPECT_GT(out.oracle_quarantined, 0);
  EXPECT_GT(out.oracle_restarts, 0);
  EXPECT_EQ(out.result.quarantined_pairs, out.oracle_quarantined);
  ASSERT_TRUE(out.counters.count("smc.pairs_quarantined"));
  EXPECT_EQ(out.counters.at("smc.pairs_quarantined"), out.oracle_quarantined);
  ASSERT_TRUE(out.counters.count("smc.worker_restarts"));
  EXPECT_EQ(out.counters.at("smc.worker_restarts"), out.oracle_restarts);
}

// Transient faults heal invisibly: with drops at a rate enough retries can
// absorb, the result is identical to the clean run and smc.retries records
// the healing work.
TEST(FaultMatrixTest, TransientFaultsHealToTheCleanResult) {
  const PipelineOutcome clean = RunPipeline(smc::FaultPlan{}, 2);
  smc::FaultPlan plan;
  plan.seed = FaultSeed();
  plan.drop_rate = 0.10;
  const PipelineOutcome healed = RunPipeline(plan, 2, /*max_retries=*/8);
  EXPECT_EQ(healed.result.matched_row_pairs, clean.result.matched_row_pairs);
  EXPECT_EQ(healed.result.quarantined_pairs, 0);
  ASSERT_TRUE(healed.counters.count("smc.retries"));
  EXPECT_GT(healed.counters.at("smc.retries"), 0);
  ASSERT_TRUE(healed.counters.count("smc.faults_injected"));
  EXPECT_GT(healed.counters.at("smc.faults_injected"), 0);
}

// The zero-fault path must be byte-identical with and without the fault
// layer in the transport stack (wrap_transport decorates with all-zero
// rates — the bench's overhead hook).
TEST(FaultMatrixTest, ZeroFaultPathIsByteIdenticalUnderTheFaultLayer) {
  const PipelineOutcome bare = RunPipeline(smc::FaultPlan{}, 2);
  smc::FaultPlan wrapped;
  wrapped.wrap_transport = true;
  const PipelineOutcome decorated = RunPipeline(wrapped, 2);
  ExpectIdenticalOutcome(bare, decorated);
  EXPECT_EQ(decorated.result.quarantined_pairs, 0);
  if (decorated.counters.count("smc.faults_injected")) {
    EXPECT_EQ(decorated.counters.at("smc.faults_injected"), 0);
  }
}

// --- Kill-then-resume ---

TEST(ResumeTest, KilledDrainResumesToTheUninterruptedResult) {
  const std::string cp_path =
      (std::filesystem::temp_directory_path() / "hprl_fault_test_resume.json")
          .string();
  std::filesystem::remove(cp_path);

  smc::FaultPlan plan;
  plan.seed = FaultSeed();
  plan.drop_rate = 0.10;
  plan.corrupt_rate = 0.05;

  const PipelineOutcome uninterrupted = RunPipeline(plan, 2);

  // "Kill" the run after two flushed batches: the session aborts with
  // Unavailable, leaving the checkpoint of the completed prefix behind.
  Status killed;
  RunPipeline(plan, 2, 3, cp_path, /*max_batches=*/2, &killed);
  ASSERT_EQ(killed.code(), StatusCode::kUnavailable) << killed.ToString();
  ASSERT_TRUE(std::filesystem::exists(cp_path));

  // Resume with a fresh process-equivalent (new oracle, same seeds): the
  // drain continues at the last completed batch and converges to the
  // uninterrupted result.
  const PipelineOutcome resumed = RunPipeline(plan, 2, 3, cp_path);
  EXPECT_GT(resumed.result.resumed_pairs, 0);
  EXPECT_EQ(resumed.result.matched_row_pairs,
            uninterrupted.result.matched_row_pairs);
  EXPECT_EQ(resumed.result.smc_matched, uninterrupted.result.smc_matched);
  EXPECT_EQ(resumed.result.smc_processed, uninterrupted.result.smc_processed);
  EXPECT_EQ(resumed.result.quarantined_pairs,
            uninterrupted.result.quarantined_pairs);
  EXPECT_EQ(resumed.result.unprocessed_pairs,
            uninterrupted.result.unprocessed_pairs);
  // A completed drain cleans up after itself.
  EXPECT_FALSE(std::filesystem::exists(cp_path));
}

TEST(ResumeTest, CheckpointRoundTripsThroughJson) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "hprl_fault_test_cp.json")
          .string();
  SmcCheckpoint cp;
  cp.fingerprint = 0xFEDCBA9876543210ull;  // > 2^53: must survive JSON
  cp.pairs_done = 1024;
  cp.smc_matched = 17;
  cp.quarantined = 3;
  cp.matched_row_pairs = {{1, 2}, {30, 40}};
  ASSERT_TRUE(SaveSmcCheckpoint(path, cp).ok());
  auto back = LoadSmcCheckpoint(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->fingerprint, cp.fingerprint);
  EXPECT_EQ(back->pairs_done, cp.pairs_done);
  EXPECT_EQ(back->smc_matched, cp.smc_matched);
  EXPECT_EQ(back->quarantined, cp.quarantined);
  EXPECT_EQ(back->matched_row_pairs, cp.matched_row_pairs);
  std::filesystem::remove(path);

  EXPECT_EQ(LoadSmcCheckpoint(path).status().code(), StatusCode::kNotFound);

  {
    std::ofstream bad(path);
    bad << "{\"schema\": \"not-a-checkpoint\"}";
  }
  EXPECT_EQ(LoadSmcCheckpoint(path).status().code(),
            StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

// --- Transport edge cases ---

TEST(TransportTest, ExpectRejectsTagMismatchAsDesync) {
  smc::MessageBus bus;
  bus.Send({"a", "b", "hello", {1, 2, 3}});
  auto got = bus.Expect("b", "goodbye");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
}

TEST(TransportTest, ExpectDetectsCorruptedPayloads) {
  smc::FaultPlan plan;
  plan.seed = 7;
  plan.corrupt_rate = 1.0;
  smc::FaultyBus bus(plan);
  bus.SetPairContext(1, 2, 0);
  bus.Send({"a", "b", "data", {1, 2, 3, 4}});
  auto got = bus.Expect("b", "data");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  EXPECT_EQ(bus.faults_injected(), 1);
}

TEST(TransportTest, DroppedMessagesComeUpNotFound) {
  smc::FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 1.0;
  smc::FaultyBus bus(plan);
  bus.SetPairContext(1, 2, 0);
  bus.Send({"a", "b", "data", {1}});
  auto got = bus.Expect("b", "data");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(TransportTest, CrashesSurfaceAsUnavailable) {
  smc::FaultPlan plan;
  plan.seed = 7;
  plan.crash_rate = 1.0;
  smc::FaultyBus bus(plan);
  bus.SetPairContext(1, 2, 0);
  bus.Send({"a", "b", "data", {1}});
  auto got = bus.Expect("b", "data");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(TransportTest, KeySetupTrafficIsExemptFromFaults) {
  smc::FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 1.0;
  plan.crash_rate = 1.0;
  smc::FaultyBus bus(plan);  // disarmed until the first SetPairContext
  bus.Send({"qp", "alice", "pubkey", {9}});
  auto got = bus.Expect("alice", "pubkey");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->payload, std::vector<uint8_t>{9});
}

TEST(TransportTest, SequenceNumbersRejectReplays) {
  struct OpenBus : smc::MessageBus {
    using smc::MessageBus::Enqueue;
  } bus;
  smc::Message msg{"a", "b", "data", {1, 2}, /*seq=*/5,
                   smc::PayloadChecksum({1, 2})};
  bus.Enqueue(msg);
  ASSERT_TRUE(bus.Expect("b", "data").ok());
  bus.Enqueue(msg);  // replayed: same sequence number
  auto replay = bus.Expect("b", "data");
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInternal);
}

// --- Receive-site ciphertext validation ---

TEST(ValidationTest, CiphertextRangePrecondition) {
  crypto::SecureRandom rng(11);
  auto kp = crypto::GeneratePaillierKeyPair(256, rng);
  ASSERT_TRUE(kp.ok());
  const auto& pub = kp->pub;

  EXPECT_EQ(pub.ValidateCiphertext(crypto::BigInt(0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pub.ValidateCiphertext(crypto::BigInt(-3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pub.ValidateCiphertext(pub.n_squared()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(pub.ValidateCiphertext(crypto::BigInt(1)).ok());
  auto ct = pub.EncryptSigned(crypto::BigInt(42), rng);
  ASSERT_TRUE(ct.ok());
  EXPECT_TRUE(pub.ValidateCiphertext(*ct).ok());
  EXPECT_TRUE(kp->priv.ValidateCiphertext(*ct).ok());

  crypto::PaillierPublicKey empty;
  EXPECT_EQ(empty.ValidateCiphertext(crypto::BigInt(1)).code(),
            StatusCode::kFailedPrecondition);
}

// The protocol heals transient drops invisibly and accounts the replays.
TEST(ValidationTest, ComparatorRetriesTransientDrops) {
  const Workload& w = SmallWorkload();
  smc::SmcConfig clean_cfg = TestSmcConfig();
  smc::SecureRecordComparator clean(clean_cfg, w.rule);
  ASSERT_TRUE(clean.Init().ok());

  smc::SmcConfig faulty_cfg = TestSmcConfig();
  faulty_cfg.fault_plan.seed = FaultSeed();
  faulty_cfg.fault_plan.drop_rate = 0.2;
  smc::SecureRecordComparator faulty(faulty_cfg, w.rule);
  ASSERT_TRUE(faulty.Init().ok());

  const Table& r = w.data.split.d1;
  const Table& s = w.data.split.d2;
  int64_t compared = 0;
  for (int64_t i = 0; i < 6; ++i) {
    auto want = clean.CompareRows(i, i, r.row(i), s.row(i));
    ASSERT_TRUE(want.ok());
    auto got = faulty.CompareRows(i, i, r.row(i), s.row(i));
    if (!got.ok()) continue;  // quarantine-class: retries exhausted
    EXPECT_EQ(*got, *want) << i;
    ++compared;
  }
  EXPECT_GT(compared, 0);
  EXPECT_GT(faulty.costs().retries, 0);
}

// --- Spec-file validation (the CLI rejects degenerate numbers) ---

TEST(SpecValidationTest, RejectsNonFiniteAndNegativeNumbers) {
  auto parse = [](const std::string& text) {
    return cli::ParseLinkageSpec(text, "/tmp");
  };
  const std::string attr = "attr age numeric equiwidth 16 8 3,2,2";
  EXPECT_TRUE(parse(attr + " theta 0.05\n").ok());
  EXPECT_FALSE(parse(attr + " theta nan\n").ok());
  EXPECT_FALSE(parse(attr + " theta -0.5\n").ok());
  EXPECT_FALSE(parse(attr + " theta inf\n").ok());
  EXPECT_FALSE(
      parse("attr age numeric equiwidth nan 8 3,2,2 theta 0.05\n").ok());
  EXPECT_FALSE(parse(attr + "\nallowance nan\n").ok());
  EXPECT_FALSE(parse(attr + "\nallowance 1.5\n").ok());
  EXPECT_FALSE(parse(attr + "\nallowance -0.1\n").ok());
  EXPECT_TRUE(parse(attr + "\nallowance 0.5\n").ok());
  EXPECT_FALSE(parse(attr + "\nsmc_threads -2\n").ok());
  EXPECT_FALSE(parse(attr + "\nsmc_retries -1\n").ok());
  EXPECT_TRUE(parse(attr + "\nsmc_retries 5\n").ok());
}

TEST(SpecValidationTest, ParsesFaultDirectives) {
  const std::string base = "attr age numeric equiwidth 16 8 3,2,2 theta 0.05\n";
  auto spec = cli::ParseLinkageSpec(
      base +
          "fault seed 23\nfault drop 0.25\nfault corrupt 0.1\n"
          "fault delay 0.05 50\nfault crash 0.02\nsmc_retries 4\n",
      "/tmp");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->fault_seed, 23u);
  EXPECT_DOUBLE_EQ(spec->fault_drop, 0.25);
  EXPECT_DOUBLE_EQ(spec->fault_corrupt, 0.1);
  EXPECT_DOUBLE_EQ(spec->fault_delay, 0.05);
  EXPECT_EQ(spec->fault_delay_micros, 50);
  EXPECT_DOUBLE_EQ(spec->fault_crash, 0.02);
  EXPECT_EQ(spec->smc_retries, 4);

  EXPECT_FALSE(cli::ParseLinkageSpec(base + "fault drop 1.5\n", "/tmp").ok());
  EXPECT_FALSE(cli::ParseLinkageSpec(base + "fault drop nan\n", "/tmp").ok());
  EXPECT_FALSE(cli::ParseLinkageSpec(base + "fault warp 0.5\n", "/tmp").ok());
  EXPECT_FALSE(cli::ParseLinkageSpec(base + "fault seed -4\n", "/tmp").ok());
}

// --- Status plumbing for the new code ---

TEST(StatusTest, UnavailableFactoryAndPropagation) {
  Status s = Status::Unavailable("party died");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: party died");
  Result<int> r = s;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace hprl
