#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "adult/adult.h"
#include "cli/runner.h"
#include "cli/spec.h"
#include "common/exit_codes.h"
#include "data/csv.h"
#include "common/string_util.h"
#include "data/partition.h"
#include "hierarchy/vgh_parser.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace hprl::cli {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- spec

TEST(SpecParserTest, ParsesFullSpec) {
  const char* text = R"(
# demo spec
attr age numeric equiwidth 16 8 3,2,2 theta 0.05
attr education categorical vghfile edu.vgh theta 0.05
attr surname text theta 1
class income
sensitive income ldiv 2
k 16
allowance 0.02
heuristic MaxLast
anonymizer DataFly
keybits 512
)";
  auto spec = ParseLinkageSpec(text, "/base");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->attrs.size(), 3u);
  EXPECT_EQ(spec->attrs[0].type, AttrType::kNumeric);
  EXPECT_DOUBLE_EQ(spec->attrs[0].lo, 16);
  EXPECT_EQ(spec->attrs[0].fanouts, (std::vector<int>{3, 2, 2}));
  EXPECT_EQ(spec->attrs[1].vgh_file, "/base/edu.vgh");
  EXPECT_EQ(spec->attrs[2].type, AttrType::kText);
  EXPECT_DOUBLE_EQ(spec->attrs[2].theta, 1.0);
  EXPECT_EQ(spec->class_attr, "income");
  EXPECT_EQ(spec->l_diversity, 2);
  EXPECT_EQ(spec->k, 16);
  EXPECT_DOUBLE_EQ(spec->allowance, 0.02);
  EXPECT_EQ(spec->heuristic, SelectionHeuristic::kMaxLast);
  EXPECT_EQ(spec->anonymizer, "DataFly");
  EXPECT_EQ(spec->key_bits, 512);
}

TEST(SpecParserTest, NumericVghFileVariant) {
  auto spec =
      ParseLinkageSpec("attr hours numeric vghfile hrs.vgh theta 0.2\n", "/d");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->attrs[0].type, AttrType::kNumeric);
  EXPECT_EQ(spec->attrs[0].vgh_file, "/d/hrs.vgh");
  EXPECT_TRUE(spec->attrs[0].fanouts.empty());
}

TEST(SpecParserTest, ThreadsDirective) {
  auto spec = ParseLinkageSpec("attr x text\nthreads 4\n", ".");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->threads, 4);
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nthreads 0\n", ".").ok());

  auto auto_spec = ParseLinkageSpec("attr x text\nthreads auto\n", ".");
  ASSERT_TRUE(auto_spec.ok());
  EXPECT_EQ(auto_spec->threads, 0);
}

TEST(SpecParserTest, SmcThreadsDirective) {
  auto spec = ParseLinkageSpec("attr x text\nsmc_threads 3\n", ".");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->smc_threads, 3);
  EXPECT_EQ(spec->threads, 0);  // independent knobs
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nsmc_threads 0\n", ".").ok());

  auto auto_spec = ParseLinkageSpec("attr x text\nsmc_threads auto\n", ".");
  ASSERT_TRUE(auto_spec.ok());
  EXPECT_EQ(auto_spec->smc_threads, 0);
}

TEST(SpecParserTest, DefaultsApply) {
  auto spec = ParseLinkageSpec("attr age numeric equiwidth 0 10 4\n", ".");
  ASSERT_TRUE(spec.ok());
  // 0 = auto: the runner resolves both to hardware_concurrency.
  EXPECT_EQ(spec->threads, 0);
  EXPECT_EQ(spec->smc_threads, 0);
  EXPECT_EQ(spec->k, 32);
  EXPECT_DOUBLE_EQ(spec->allowance, 0.015);
  EXPECT_EQ(spec->heuristic, SelectionHeuristic::kMinAvgFirst);
  EXPECT_EQ(spec->anonymizer, "MaxEntropy");
  EXPECT_EQ(spec->key_bits, 0);
  EXPECT_DOUBLE_EQ(spec->attrs[0].theta, 0.05);
}

TEST(SpecParserTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseLinkageSpec("", ".").ok());           // no attrs
  EXPECT_FALSE(ParseLinkageSpec("bogus 1\n", ".").ok());  // unknown directive
  EXPECT_FALSE(ParseLinkageSpec("attr x numeric theta 0.1\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x categorical theta 0.1\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x wrongtype\n", ".").ok());
  EXPECT_FALSE(
      ParseLinkageSpec("attr x numeric equiwidth 0 8 2 theta -1\n", ".").ok());
  EXPECT_FALSE(
      ParseLinkageSpec("attr x text\nallowance 2\n", ".").ok());  // > 1
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nk 0\n", ".").ok());
  EXPECT_FALSE(
      ParseLinkageSpec("attr x text\nheuristic Bogus\n", ".").ok());
  EXPECT_FALSE(
      ParseLinkageSpec("attr x text\nsensitive y ldiv x\n", ".").ok());
}

TEST(SpecParserTest, MembershipDirectives) {
  auto spec = ParseLinkageSpec(
      "attr x text\nhb_interval 120\nsuspect_misses 3\ndead_misses 9\n", ".");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->hb_interval_ms, 120);
  EXPECT_EQ(spec->suspect_misses, 3);
  EXPECT_EQ(spec->dead_misses, 9);

  auto defaults = ParseLinkageSpec("attr x text\n", ".");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->hb_interval_ms, 250);
  EXPECT_EQ(defaults->suspect_misses, 2);
  EXPECT_EQ(defaults->dead_misses, 4);
}

TEST(SpecParserTest, RejectsBadMembershipDirectives) {
  // The probe cadence must be a finite positive millisecond count — and
  // ParseDouble accepts "nan"/"inf", so the parser must too reject those.
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nhb_interval 0\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nhb_interval -5\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nhb_interval nan\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nhb_interval inf\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nhb_interval soon\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\nsuspect_misses 0\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\ndead_misses 0\n", ".").ok());
  EXPECT_FALSE(ParseLinkageSpec("attr x text\ndead_misses -1\n", ".").ok());
  // Dead must come strictly after suspect or a replica could skip the
  // recoverable state entirely.
  EXPECT_FALSE(
      ParseLinkageSpec("attr x text\nsuspect_misses 4\ndead_misses 4\n", ".")
          .ok());
  EXPECT_FALSE(
      ParseLinkageSpec("attr x text\nsuspect_misses 5\ndead_misses 3\n", ".")
          .ok());
}

// ---------------------------------------------------------------- exit codes

TEST(ExitCodeTest, TaxonomyMapsStatusFamilies) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), kExitOk);
  // Config/usage family: the operator wrote something wrong.
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), kExitConfig);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), kExitConfig);
  // Transport family: peers or the wire, retryable from outside.
  EXPECT_EQ(ExitCodeForStatus(Status::Unavailable("x")), kExitTransport);
  EXPECT_EQ(ExitCodeForStatus(Status::IOError("x")), kExitTransport);
  // Integrity family: crypto material / journal / fencing refusals.
  EXPECT_EQ(ExitCodeForStatus(Status::FailedPrecondition("x")),
            kExitIntegrity);
  // Everything else stays the generic failure.
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), kExitFailure);
  EXPECT_EQ(ExitCodeForStatus(Status::Unimplemented("x")), kExitFailure);
  EXPECT_EQ(ExitCodeForStatus(Status::OutOfRange("x")), kExitFailure);
}

// ---------------------------------------------------------------- runner

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "hprl_cli_test";
    fs::create_directories(dir_);

    // Materialize a small Adult-like scenario on disk.
    auto h = adult::BuildAdultHierarchies();
    Table source = adult::GenerateAdult(450, 1234, h);
    Rng rng(5);
    auto split = SplitForLinkage(source, rng);
    ASSERT_TRUE(split.ok());
    ASSERT_TRUE(WriteCsv(split->d1, (dir_ / "r.csv").string()).ok());
    ASSERT_TRUE(WriteCsv(split->d2, (dir_ / "s.csv").string()).ok());

    // VGH files for the categorical QIDs.
    for (const char* name : {"workclass", "education", "marital-status"}) {
      std::ofstream out(dir_ / (std::string(name) + ".vgh"));
      out << FormatCategoricalVgh(*h.ByName(name));
    }
    std::ofstream spec(dir_ / "linkage.spec");
    spec << "attr age numeric equiwidth 16 8 3,2,2 theta 0.05\n"
         << "attr workclass categorical vghfile workclass.vgh theta 0.05\n"
         << "attr education categorical vghfile education.vgh theta 0.05\n"
         << "attr marital-status categorical vghfile marital-status.vgh "
            "theta 0.05\n"
         << "class income\n"
         << "k 8\n"
         << "allowance 1.0\n";
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(RunnerTest, EndToEndFromFiles) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  RunnerOptions options;
  options.evaluate = true;
  options.links_out = (dir_ / "links.csv").string();
  options.release_r_out = (dir_ / "release_r.txt").string();
  options.publish_releases = true;

  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.rows_r, 300);
  EXPECT_EQ(report->result.rows_s, 300);
  EXPECT_EQ(report->oracle, "plaintext");
  // allowance 1.0 => everything labeled => perfect recall.
  EXPECT_DOUBLE_EQ(report->result.recall, 1.0);
  EXPECT_GE(report->result.true_matches, 150);  // the shared d3 block

  // Side outputs exist and have the expected shape.
  auto raw = ReadCsvRaw(options.links_out);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->header, (std::vector<std::string>{"row_r", "row_s"}));
  EXPECT_EQ(static_cast<int64_t>(raw->rows.size()),
            report->result.reported_matches);

  std::ifstream release(options.release_r_out);
  std::string first_line;
  ASSERT_TRUE(std::getline(release, first_line));
  EXPECT_EQ(first_line, "hprl-release 1");

  // The textual summary mentions the key numbers.
  std::string text = report->ToString();
  EXPECT_NE(text.find("R=300 rows"), std::string::npos);
  EXPECT_NE(text.find("recall 100.00%"), std::string::npos);
}

TEST_F(RunnerTest, RealPaillierOracleThroughTheCli) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  spec->key_bits = 256;       // real crypto, small key for speed
  spec->allowance = 0.002;    // keep the invocation count tiny
  RunnerOptions options;
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->oracle, "paillier-256");
  EXPECT_LE(report->result.smc_processed, report->result.allowance_pairs);
}

TEST_F(RunnerTest, ThreadsOverrideMatchesSequentialRun) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());

  RunnerOptions sequential;
  auto base = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                  (dir_ / "s.csv").string(), sequential);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  RunnerOptions threaded;
  threaded.threads_override = 4;
  auto out = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                 (dir_ / "s.csv").string(), threaded);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // The blocking decision rule is deterministic: worker count must not
  // change a single M/N/U tally nor anything downstream of them.
  EXPECT_EQ(out->result.blocked_match_pairs, base->result.blocked_match_pairs);
  EXPECT_EQ(out->result.blocked_mismatch_pairs,
            base->result.blocked_mismatch_pairs);
  EXPECT_EQ(out->result.unknown_pairs, base->result.unknown_pairs);
  EXPECT_EQ(out->result.reported_matches, base->result.reported_matches);
  EXPECT_EQ(out->result.smc_processed, base->result.smc_processed);
}

TEST_F(RunnerTest, MetricsOutWritesParsableRunReport) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());

  RunnerOptions options;
  options.evaluate = true;
  options.metrics_out = (dir_ / "run.json").string();
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::ifstream in(options.metrics_out);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto json = obs::ParseJson(text);
  ASSERT_TRUE(json.ok()) << json.status().ToString();

  EXPECT_EQ(json->Find("schema")->AsString(), "hprl-run-report/1");
  EXPECT_EQ(json->Find("tool")->AsString(), "hprl_link");

  const obs::JsonValue* metrics = json->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("rows_r")->AsInt(), report->result.rows_r);
  EXPECT_EQ(metrics->Find("unknown_pairs")->AsInt(),
            report->result.unknown_pairs);
  EXPECT_EQ(metrics->Find("reported_matches")->AsInt(),
            report->result.reported_matches);

  // The registry dump carries the pipeline counters and the stage spans.
  const obs::JsonValue* counters = json->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("blocking.pairs_total")->AsInt(),
            report->result.total_pairs);
  EXPECT_EQ(counters->Find("smc.invocations")->AsInt(),
            report->result.smc_processed);
  EXPECT_GT(counters->Find("anon.groups")->AsInt(), 0);

  const obs::JsonValue* spans = json->Find("spans");
  ASSERT_NE(spans, nullptr);
  for (const char* path : {"linkage/anonymize", "linkage", "linkage/block",
                           "linkage/select", "linkage/smc",
                           "linkage/evaluate"}) {
    ASSERT_NE(spans->Find(path), nullptr) << path;
    EXPECT_GE(spans->Find(path)->Find("seconds")->AsDouble(), 0.0) << path;
  }
}

TEST_F(RunnerTest, ExternalRegistrySeesPipelineCounters) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  obs::MetricsRegistry registry;
  RunnerOptions options;
  options.metrics = &registry;
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto counters = registry.CounterValues();
  EXPECT_EQ(counters["blocking.pairs_total"], report->result.total_pairs);
  EXPECT_EQ(counters["linkage.reported_matches"],
            report->result.reported_matches);
}

TEST_F(RunnerTest, ResumeFlagRequiresAJournalPath) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.resume = true;
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RunnerTest, ResumeWithoutAJournalFileIsRefused) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.resume = true;
  options.journal = (dir_ / "never_written.jnl").string();
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().message().find("no session journal"),
            std::string::npos);
}

TEST_F(RunnerTest, CorruptJournalAbortsAStrictResume) {
  const std::string journal = (dir_ / "damaged.jnl").string();
  {
    std::ofstream out(journal, std::ios::binary);
    out << "HPRLJNL1 but then garbage";
  }
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.resume = true;
  options.journal = journal;
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RunnerTest, CorruptJournalWithoutResumeStartsCleanAndCompletes) {
  const std::string journal = (dir_ / "stale.jnl").string();
  {
    std::ofstream out(journal, std::ios::binary);
    out << "not a journal at all";
  }
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.journal = journal;  // journaling on, but no strict resume
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The damaged file was never resumed from, and the completed run cleaned
  // up after itself.
  EXPECT_EQ(report->result.resumed_pairs, 0);
  EXPECT_FALSE(fs::exists(journal));
}

TEST_F(RunnerTest, CompletedRunRemovesItsJournal) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.journal = (dir_ / "run.jnl").string();
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(fs::exists(options.journal));
}

TEST_F(RunnerTest, MembershipOverridesMustKeepDeadAfterSuspect) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  RunnerOptions options;
  options.suspect_misses_override = 5;
  options.dead_misses_override = 5;
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(report.status().message().find("dead_misses"), std::string::npos);
}

TEST_F(RunnerTest, MissingColumnIsReported) {
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  spec->attrs[0].name = "not-a-column";
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), {});
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST_F(RunnerTest, UnknownCategoryIsReportedWithRowContext) {
  // Corrupt one field of r.csv so it no longer matches the VGH leaves.
  auto raw = ReadCsvRaw((dir_ / "r.csv").string());
  ASSERT_TRUE(raw.ok());
  int col = raw->FindColumn("education");
  ASSERT_GE(col, 0);
  raw->rows[5][col] = "PhD-in-something-else";
  {
    std::ofstream out(dir_ / "r.csv");
    out << Join(raw->header, ",") << "\n";
    for (const auto& row : raw->rows) out << Join(row, ",") << "\n";
  }
  auto spec = LoadLinkageSpec((dir_ / "linkage.spec").string());
  ASSERT_TRUE(spec.ok());
  auto report = RunLinkageFromFiles(*spec, (dir_ / "r.csv").string(),
                                    (dir_ / "s.csv").string(), {});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("row 6"), std::string::npos);
}

}  // namespace
}  // namespace hprl::cli
