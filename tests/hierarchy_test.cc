#include <gtest/gtest.h>

#include "hierarchy/vgh.h"
#include "hierarchy/vgh_parser.h"

namespace hprl {
namespace {

Vgh MakeEducationExample() {
  VghBuilder b(Vgh::Kind::kCategorical);
  int any = b.AddRoot("ANY");
  int sec = b.AddChild(any, "Secondary");
  int junior = b.AddChild(sec, "Junior Sec.");
  b.AddChild(junior, "9th");
  b.AddChild(junior, "10th");
  int senior = b.AddChild(sec, "Senior Sec.");
  b.AddChild(senior, "11th");
  b.AddChild(senior, "12th");
  int uni = b.AddChild(any, "University");
  b.AddChild(uni, "Bachelors");
  int grad = b.AddChild(uni, "Grad School");
  b.AddChild(grad, "Masters");
  b.AddChild(grad, "Doctorate");
  auto r = b.Build();
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(VghTest, LeafNumberingIsDfsContiguous) {
  Vgh vgh = MakeEducationExample();
  EXPECT_EQ(vgh.num_leaves(), 7);
  // Leaves in DFS order: 9th, 10th, 11th, 12th, Bachelors, Masters, Doctorate.
  EXPECT_EQ(vgh.node(vgh.leaf_node(0)).label, "9th");
  EXPECT_EQ(vgh.node(vgh.leaf_node(4)).label, "Bachelors");
  EXPECT_EQ(vgh.node(vgh.leaf_node(6)).label, "Doctorate");

  int secondary = vgh.FindByLabel("Secondary");
  EXPECT_EQ(vgh.node(secondary).leaf_begin, 0);
  EXPECT_EQ(vgh.node(secondary).leaf_end, 4);
  int uni = vgh.FindByLabel("University");
  EXPECT_EQ(vgh.node(uni).leaf_begin, 4);
  EXPECT_EQ(vgh.node(uni).leaf_end, 7);
  EXPECT_EQ(vgh.node(Vgh::kRoot).leaf_begin, 0);
  EXPECT_EQ(vgh.node(Vgh::kRoot).leaf_end, 7);
}

TEST(VghTest, LevelsAndHeight) {
  Vgh vgh = MakeEducationExample();
  EXPECT_EQ(vgh.level(Vgh::kRoot), 0);
  EXPECT_EQ(vgh.level(vgh.FindByLabel("Secondary")), 1);
  EXPECT_EQ(vgh.level(vgh.FindByLabel("9th")), 3);
  EXPECT_EQ(vgh.level(vgh.FindByLabel("Bachelors")), 2);  // irregular depth
  EXPECT_EQ(vgh.height(), 3);
}

TEST(VghTest, AncestorAtLevelClimbsAndClamps) {
  Vgh vgh = MakeEducationExample();
  int ninth = vgh.FindByLabel("9th");
  EXPECT_EQ(vgh.AncestorAtLevel(ninth, 3), ninth);
  EXPECT_EQ(vgh.AncestorAtLevel(ninth, 2), vgh.FindByLabel("Junior Sec."));
  EXPECT_EQ(vgh.AncestorAtLevel(ninth, 1), vgh.FindByLabel("Secondary"));
  EXPECT_EQ(vgh.AncestorAtLevel(ninth, 0), Vgh::kRoot);
  // Shallow leaf stays put when the target level is below it.
  int bachelors = vgh.FindByLabel("Bachelors");
  EXPECT_EQ(vgh.AncestorAtLevel(bachelors, 3), bachelors);
}

TEST(VghTest, GenProducesLeafRanges) {
  Vgh vgh = MakeEducationExample();
  GenValue g = vgh.Gen(vgh.FindByLabel("Senior Sec."));
  EXPECT_EQ(g.type, AttrType::kCategorical);
  EXPECT_EQ(g.cat_lo, 2);
  EXPECT_EQ(g.cat_hi, 4);
  EXPECT_FALSE(g.IsSingleton());
  GenValue leaf = vgh.Gen(vgh.FindByLabel("Masters"));
  EXPECT_TRUE(leaf.IsSingleton());
}

TEST(VghTest, MakeDomainMatchesLeafOrder) {
  Vgh vgh = MakeEducationExample();
  auto domain = vgh.MakeDomain();
  EXPECT_EQ(domain->size(), 7);
  EXPECT_EQ(domain->Find("9th"), 0);
  EXPECT_EQ(domain->Find("Doctorate"), 6);
  EXPECT_EQ(vgh.LeafForCategory(domain->Find("11th")),
            vgh.FindByLabel("11th"));
}

TEST(VghTest, DuplicateLabelRejected) {
  VghBuilder b(Vgh::Kind::kCategorical);
  int any = b.AddRoot("ANY");
  b.AddChild(any, "X");
  b.AddChild(any, "X");
  EXPECT_FALSE(b.Build().ok());
}

TEST(VghTest, NumericPartitionValidated) {
  {
    VghBuilder b(Vgh::Kind::kNumeric);
    int any = b.AddNumericRoot(0, 10);
    b.AddNumericChild(any, 0, 5);
    b.AddNumericChild(any, 6, 10);  // gap at [5,6)
    EXPECT_FALSE(b.Build().ok());
  }
  {
    VghBuilder b(Vgh::Kind::kNumeric);
    int any = b.AddNumericRoot(0, 10);
    b.AddNumericChild(any, 0, 5);
    b.AddNumericChild(any, 5, 9);  // stops short of 10
    EXPECT_FALSE(b.Build().ok());
  }
  {
    VghBuilder b(Vgh::Kind::kNumeric);
    int any = b.AddNumericRoot(0, 10);
    b.AddNumericChild(any, 0, 5);
    b.AddNumericChild(any, 5, 10);
    EXPECT_TRUE(b.Build().ok());
  }
}

TEST(VghTest, LeafForNumericDescends) {
  auto vgh = MakeEquiWidthVgh(16, 8, {3, 2, 2});
  ASSERT_TRUE(vgh.ok());
  EXPECT_EQ(vgh->num_leaves(), 12);
  EXPECT_EQ(vgh->height(), 3);
  EXPECT_DOUBLE_EQ(vgh->RootRange(), 96);

  auto leaf = vgh->LeafForNumeric(17);
  ASSERT_TRUE(leaf.ok());
  EXPECT_DOUBLE_EQ(vgh->node(*leaf).lo, 16);
  EXPECT_DOUBLE_EQ(vgh->node(*leaf).hi, 24);

  auto last = vgh->LeafForNumeric(111.9);
  ASSERT_TRUE(last.ok());
  EXPECT_DOUBLE_EQ(vgh->node(*last).hi, 112);

  EXPECT_FALSE(vgh->LeafForNumeric(112).ok());  // hi is exclusive
  EXPECT_FALSE(vgh->LeafForNumeric(15.9).ok());
}

TEST(VghTest, EquiWidthBoundaryContainment) {
  auto vgh = MakeEquiWidthVgh(0, 1, {4, 4});
  ASSERT_TRUE(vgh.ok());
  // Every integer boundary lands in the leaf starting there.
  for (int v = 0; v < 16; ++v) {
    auto leaf = vgh->LeafForNumeric(v);
    ASSERT_TRUE(leaf.ok());
    EXPECT_DOUBLE_EQ(vgh->node(*leaf).lo, v);
  }
}

TEST(VghParserTest, ParsesIndentedSpec) {
  const char* spec =
      "# comment\n"
      "ANY\n"
      "  A\n"
      "    a1\n"
      "    a2\n"
      "  B\n"
      "    b1\n";
  auto vgh = ParseCategoricalVgh(spec);
  ASSERT_TRUE(vgh.ok()) << vgh.status().ToString();
  EXPECT_EQ(vgh->num_leaves(), 3);
  EXPECT_EQ(vgh->node(vgh->FindByLabel("a2")).parent,
            vgh->FindByLabel("A"));
  EXPECT_EQ(vgh->height(), 2);
}

TEST(VghParserTest, RoundTripsThroughFormat) {
  Vgh vgh = MakeEducationExample();
  std::string text = FormatCategoricalVgh(vgh);
  auto back = ParseCategoricalVgh(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), vgh.num_nodes());
  EXPECT_EQ(back->num_leaves(), vgh.num_leaves());
  EXPECT_EQ(FormatCategoricalVgh(*back), text);
}

TEST(VghParserTest, NumericSpecRoundTrips) {
  const char* spec =
      "# WorkHrs (paper Fig. 1)\n"
      "[1,99)\n"
      "  [1,37)\n"
      "    [1,35)\n"
      "    [35,37)\n"
      "  [37,99)\n";
  auto vgh = ParseNumericVgh(spec);
  ASSERT_TRUE(vgh.ok()) << vgh.status().ToString();
  EXPECT_EQ(vgh->kind(), Vgh::Kind::kNumeric);
  EXPECT_DOUBLE_EQ(vgh->RootRange(), 98);
  EXPECT_EQ(vgh->num_leaves(), 3);
  auto leaf = vgh->LeafForNumeric(36);
  ASSERT_TRUE(leaf.ok());
  EXPECT_DOUBLE_EQ(vgh->node(*leaf).lo, 35);

  auto back = ParseNumericVgh(FormatNumericVgh(*vgh));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), vgh->num_nodes());
  EXPECT_DOUBLE_EQ(back->RootRange(), vgh->RootRange());
}

TEST(VghParserTest, NumericSpecRejectsBadIntervals) {
  EXPECT_FALSE(ParseNumericVgh("[1,99]\n").ok());     // wrong bracket
  EXPECT_FALSE(ParseNumericVgh("[5,5)\n").ok());      // empty
  EXPECT_FALSE(ParseNumericVgh("[a,b)\n").ok());      // not numbers
  EXPECT_FALSE(ParseNumericVgh("1,99\n").ok());       // no brackets
  // Children leaving a gap fail Build's partition check.
  EXPECT_FALSE(ParseNumericVgh("[0,10)\n  [0,4)\n  [5,10)\n").ok());
}

TEST(VghParserTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseCategoricalVgh("").ok());
  EXPECT_FALSE(ParseCategoricalVgh("  indented root\n").ok());
  EXPECT_FALSE(ParseCategoricalVgh("ANY\n    jumps two levels\n").ok());
  EXPECT_FALSE(ParseCategoricalVgh("ANY\nsecond root\n").ok());
  EXPECT_FALSE(ParseCategoricalVgh("ANY\n   odd indent\n").ok());
}

}  // namespace
}  // namespace hprl
