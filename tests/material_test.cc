// Robustness of the persistent offline-material cache (crypto/material.h):
// a valid file round-trips bit-exactly; a file damaged in ANY way —
// truncated at any prefix, a single flipped bit anywhere, filed under the
// wrong keypair — is rejected (never trusted, never fatal) and the caller
// regenerates, producing labels identical to a cold run.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "crypto/material.h"
#include "crypto/paillier.h"
#include "crypto/secure_random.h"
#include "smc/batch_engine.h"
#include "smc/protocol.h"

namespace hprl::crypto {
namespace {

constexpr int kTestKeyBits = 256;

std::string MakeTempDir() {
  std::string tmpl = ::testing::TempDir() + "hprl_material_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  EXPECT_NE(got, nullptr);
  return std::string(buf.data());
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A small keypair plus a pool with a few prewarmed randomizers — the
/// material every test serializes, damages, and reloads.
struct Fixture {
  PaillierKeyPair kp;
  CryptoMaterial material;
};

Fixture MakeFixture(uint64_t seed, int randomizers) {
  Fixture f;
  SecureRandom rng(seed);
  auto kp = GeneratePaillierKeyPair(kTestKeyBits, rng);
  EXPECT_TRUE(kp.ok()) << kp.status().ToString();
  f.kp = *kp;
  RandomizerPool pool(f.kp.pub, /*target_depth=*/randomizers, seed);
  EXPECT_GE(pool.Prewarm(randomizers), randomizers);
  f.material = pool.ExportMaterial(/*slot_bits=*/0);
  EXPECT_EQ(f.material.randomizers.size(),
            static_cast<size_t>(randomizers));
  EXPECT_FALSE(f.material.table_blob.empty());
  return f;
}

TEST(KeyFingerprintTest, StableAndKeyDependent) {
  SecureRandom rng1(7), rng2(8);
  auto kp1 = GeneratePaillierKeyPair(kTestKeyBits, rng1);
  auto kp2 = GeneratePaillierKeyPair(kTestKeyBits, rng2);
  ASSERT_TRUE(kp1.ok() && kp2.ok());
  EXPECT_EQ(KeyFingerprint(kp1->pub.n()), KeyFingerprint(kp1->pub.n()));
  EXPECT_NE(KeyFingerprint(kp1->pub.n()), KeyFingerprint(kp2->pub.n()));
}

TEST(MaterialStoreTest, SaveLoadRoundTripIsExact) {
  const std::string dir = MakeTempDir();
  Fixture f = MakeFixture(41, 6);
  MaterialStore store(dir);
  ASSERT_TRUE(store.Save(f.material).ok());

  MaterialStore reader(dir);  // fresh stats
  auto loaded = reader.Load(f.material.fingerprint, f.material.modulus_bits,
                            f.material.slot_bits);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, f.material.fingerprint);
  EXPECT_EQ(loaded->modulus_bits, f.material.modulus_bits);
  EXPECT_EQ(loaded->slot_bits, f.material.slot_bits);
  EXPECT_EQ(loaded->short_exp_bits, f.material.short_exp_bits);
  EXPECT_EQ(loaded->table_blob, f.material.table_blob);
  ASSERT_EQ(loaded->randomizers.size(), f.material.randomizers.size());
  for (size_t i = 0; i < loaded->randomizers.size(); ++i) {
    EXPECT_EQ(loaded->randomizers[i], f.material.randomizers[i]) << i;
  }
  EXPECT_EQ(reader.stats().hits, 1);
  EXPECT_EQ(reader.stats().misses, 0);
  EXPECT_EQ(reader.stats().rejected, 0);
  EXPECT_GT(reader.stats().bytes, 0);
}

TEST(MaterialStoreTest, AbsentFileIsAMissNotARejection) {
  MaterialStore store(MakeTempDir());
  auto loaded = store.Load(0xDEAD, kTestKeyBits, 0);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().misses, 1);
  EXPECT_EQ(store.stats().rejected, 0);
}

TEST(MaterialStoreTest, EveryTruncationIsRejectedNeverFatal) {
  const std::string dir = MakeTempDir();
  Fixture f = MakeFixture(42, 4);
  MaterialStore store(dir);
  ASSERT_TRUE(store.Save(f.material).ok());
  const std::string path = store.PathFor(
      f.material.fingerprint, f.material.modulus_bits, f.material.slot_bits);
  const std::vector<uint8_t> good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 64u);

  // Every prefix of the header region, then strided prefixes of the body.
  int64_t rejections = 0;
  for (size_t len = 0; len < good.size();
       len += (len < 96 ? 1 : 61)) {
    WriteFileBytes(path, std::vector<uint8_t>(good.begin(),
                                              good.begin() + len));
    auto loaded = store.Load(f.material.fingerprint, f.material.modulus_bits,
                             f.material.slot_bits);
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
        << "truncated to " << len << " bytes";
    ++rejections;
    EXPECT_EQ(store.stats().rejected, rejections);
  }

  // The intact file still loads after all that (store state is per-call).
  WriteFileBytes(path, good);
  EXPECT_TRUE(store
                  .Load(f.material.fingerprint, f.material.modulus_bits,
                        f.material.slot_bits)
                  .ok());
}

TEST(MaterialStoreTest, AnySingleBitFlipIsRejected) {
  const std::string dir = MakeTempDir();
  Fixture f = MakeFixture(43, 4);
  MaterialStore store(dir);
  ASSERT_TRUE(store.Save(f.material).ok());
  const std::string path = store.PathFor(
      f.material.fingerprint, f.material.modulus_bits, f.material.slot_bits);
  const std::vector<uint8_t> good = ReadFileBytes(path);

  // Flip one bit in a stride of positions covering magic, version, header
  // fields, table blob, randomizer bank and the trailing checksum.
  for (size_t pos = 0; pos < good.size();
       pos += (pos < 40 || pos + 9 > good.size() ? 1 : 43)) {
    std::vector<uint8_t> bad = good;
    bad[pos] ^= 0x10;
    WriteFileBytes(path, bad);
    auto loaded = store.Load(f.material.fingerprint, f.material.modulus_bits,
                             f.material.slot_bits);
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
        << "bit flip at byte " << pos << " was trusted";
  }
  EXPECT_GT(store.stats().rejected, 0);
  EXPECT_EQ(store.stats().hits, 0);
}

TEST(MaterialStoreTest, StaleFingerprintIsRejected) {
  const std::string dir = MakeTempDir();
  Fixture f = MakeFixture(44, 4);
  MaterialStore store(dir);
  ASSERT_TRUE(store.Save(f.material).ok());

  // Refile key A's material under key B's cache path — as if an operator
  // copied a store between deployments. The header fingerprint disagrees
  // with the requested key, so the load MUST reject it: randomizers from
  // another keypair would silently corrupt every ciphertext.
  const uint64_t other_fp = f.material.fingerprint + 1;
  const std::vector<uint8_t> bytes = ReadFileBytes(store.PathFor(
      f.material.fingerprint, f.material.modulus_bits, f.material.slot_bits));
  WriteFileBytes(
      store.PathFor(other_fp, f.material.modulus_bits, f.material.slot_bits),
      bytes);
  auto loaded =
      store.Load(other_fp, f.material.modulus_bits, f.material.slot_bits);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.stats().rejected, 1);

  // Same story for a slot-layout mismatch.
  WriteFileBytes(
      store.PathFor(f.material.fingerprint, f.material.modulus_bits, 64),
      bytes);
  EXPECT_FALSE(
      store.Load(f.material.fingerprint, f.material.modulus_bits, 64).ok());
  EXPECT_EQ(store.stats().rejected, 2);
}

TEST(RandomizerPoolTest, AdoptionIsConsumeOnlyAndPreStartOnly) {
  Fixture f = MakeFixture(45, 5);

  RandomizerPool pool(f.kp.pub, /*target_depth=*/2, /*test_seed=*/45);
  ASSERT_TRUE(pool.AdoptMaterial(f.material).ok());
  EXPECT_EQ(pool.adopted(), 5);
  EXPECT_EQ(pool.depth(), 5);  // above target: consume-only until spent

  // Adopted values are handed out before anything new is generated, and
  // each exactly once.
  for (int i = 0; i < 5; ++i) {
    BigInt r = pool.Take();
    EXPECT_EQ(r, f.material.randomizers[static_cast<size_t>(i)]) << i;
  }
  EXPECT_EQ(pool.hits(), 5);

  // After Start the filler owns the queue; adoption must be refused.
  pool.Start();
  Status late = pool.AdoptMaterial(f.material);
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  pool.Stop();

  // Out-of-range randomizers are refused atomically (pool untouched).
  RandomizerPool fresh(f.kp.pub, 2, 45);
  CryptoMaterial bad = f.material;
  bad.randomizers.push_back(BigInt(0));
  EXPECT_EQ(fresh.AdoptMaterial(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fresh.adopted(), 0);
  EXPECT_EQ(fresh.depth(), 0);
}

// ---------------------------------------------------------------------------
// Engine-level acceptance: cold run, warm run, and a run whose cache was
// corrupted in place must all produce bit-identical labels; only the
// material accounting distinguishes them.

struct Workload {
  ExperimentData data;
  MatchRule rule;
};

const Workload& SmallWorkload() {
  static const Workload* w = [] {
    auto data = PrepareAdultData(40, 91);
    EXPECT_TRUE(data.ok());
    std::vector<VghPtr> vghs;
    for (const auto& n : adult::AdultQidNames()) {
      vghs.push_back(data->hierarchies.ByName(n));
    }
    auto rule =
        MakeUniformRule(data->schema, adult::AdultQidNames(), vghs, 3, 0.05);
    EXPECT_TRUE(rule.ok());
    return new Workload{std::move(data).value(), std::move(rule).value()};
  }();
  return *w;
}

std::vector<RowPairRequest> MakeBatch(const Workload& w, size_t limit) {
  std::vector<RowPairRequest> batch;
  const Table& r = w.data.split.d1;
  const Table& s = w.data.split.d2;
  for (int64_t i = 0; i < r.num_rows() && batch.size() < limit; ++i) {
    for (int64_t j = 0; j < s.num_rows() && batch.size() < limit; ++j) {
      batch.push_back({i, j, &r.row(i), &s.row(j)});
    }
  }
  return batch;
}

smc::SmcConfig MaterialSmcConfig(const std::string& dir) {
  smc::SmcConfig cfg;
  cfg.key_bits = kTestKeyBits;
  cfg.test_seed = 11;  // material only ever hits at a pinned seed
  cfg.material_dir = dir;
  cfg.offline_pairs = 8;
  return cfg;
}

TEST(MaterialEngineTest, WarmAndRepairedRunsMatchColdBitForBit) {
  const Workload& w = SmallWorkload();
  const std::string dir = MakeTempDir();
  const auto batch = MakeBatch(w, 24);

  // Cold: empty store — miss, prewarm, save for the next run.
  smc::BatchSmcEngine cold(MaterialSmcConfig(dir), w.rule, 2);
  ASSERT_TRUE(cold.Init().ok());
  EXPECT_FALSE(cold.material_warm());
  EXPECT_EQ(cold.material_stats().hits, 0);
  EXPECT_GE(cold.material_stats().misses, 1);
  auto cold_labels = cold.CompareBatch(batch);
  ASSERT_TRUE(cold_labels.ok());

  // Warm: the persisted material is adopted; labels must not change.
  smc::BatchSmcEngine warm(MaterialSmcConfig(dir), w.rule, 2);
  ASSERT_TRUE(warm.Init().ok());
  EXPECT_TRUE(warm.material_warm());
  EXPECT_EQ(warm.material_stats().hits, 1);
  EXPECT_EQ(warm.material_stats().rejected, 0);
  auto warm_labels = warm.CompareBatch(batch);
  ASSERT_TRUE(warm_labels.ok());
  EXPECT_EQ(*warm_labels, *cold_labels);

  // Corrupt the cache file in place: the next engine must reject it,
  // regenerate as if cold, overwrite the bad file, and still produce the
  // same labels. Silent acceptance of the flipped bit would surface here
  // as either an Init failure or a label diff.
  crypto::MaterialStore probe(dir);
  const auto exported =
      warm.randomizer_pool()->ExportMaterial(/*slot_bits=*/0);
  const std::string path = probe.PathFor(exported.fingerprint,
                                         exported.modulus_bits, 0);
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x04;
  WriteFileBytes(path, bytes);

  smc::BatchSmcEngine repaired(MaterialSmcConfig(dir), w.rule, 2);
  ASSERT_TRUE(repaired.Init().ok());
  EXPECT_FALSE(repaired.material_warm());
  EXPECT_EQ(repaired.material_stats().rejected, 1);
  auto repaired_labels = repaired.CompareBatch(batch);
  ASSERT_TRUE(repaired_labels.ok());
  EXPECT_EQ(*repaired_labels, *cold_labels);

  // ... and the rewrite healed the store: a fourth engine is warm again.
  smc::BatchSmcEngine healed(MaterialSmcConfig(dir), w.rule, 2);
  ASSERT_TRUE(healed.Init().ok());
  EXPECT_TRUE(healed.material_warm());
}

}  // namespace
}  // namespace hprl::crypto
