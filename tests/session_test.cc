#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/session.h"
#include "linkage/oracle.h"
#include "obs/metrics.h"

namespace hprl {
namespace {

/// Shared small scenario: synthesized Adult data, MaxEntropy releases and
/// the uniform 5-QID rule, built once for the whole suite.
class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto d = PrepareAdultData(600, 17);
    ASSERT_TRUE(d.ok());
    data_ = new ExperimentData(std::move(d).value());

    auto anon_cfg = MakeAdultAnonConfig(*data_, 5, 8);
    ASSERT_TRUE(anon_cfg.ok());
    auto anonymizer = MakeMaxEntropyAnonymizer(*anon_cfg);
    auto anon_r = anonymizer->Anonymize(data_->split.d1);
    auto anon_s = anonymizer->Anonymize(data_->split.d2);
    ASSERT_TRUE(anon_r.ok() && anon_s.ok());
    anon_r_ = new AnonymizedTable(std::move(anon_r).value());
    anon_s_ = new AnonymizedTable(std::move(anon_s).value());

    std::vector<VghPtr> vghs;
    for (const auto& n : adult::AdultQidNames()) {
      vghs.push_back(data_->hierarchies.ByName(n));
    }
    auto rule = MakeUniformRule(data_->schema, adult::AdultQidNames(), vghs,
                                5, 0.05);
    ASSERT_TRUE(rule.ok());
    rule_ = new MatchRule(std::move(rule).value());
  }

  static HybridConfig DefaultConfig() {
    HybridConfig hc;
    hc.rule = *rule_;
    hc.smc_allowance_fraction = 0.02;
    hc.collect_matches = true;
    return hc;
  }

  static const ExperimentData* data_;
  static const AnonymizedTable* anon_r_;
  static const AnonymizedTable* anon_s_;
  static const MatchRule* rule_;
};

const ExperimentData* SessionTest::data_ = nullptr;
const AnonymizedTable* SessionTest::anon_r_ = nullptr;
const AnonymizedTable* SessionTest::anon_s_ = nullptr;
const MatchRule* SessionTest::rule_ = nullptr;

TEST_F(SessionTest, MatchesLegacyFreeFunctionExactly) {
  HybridConfig hc = DefaultConfig();

  CountingPlaintextOracle legacy_oracle(*rule_);
  auto legacy = RunHybridLinkage(data_->split.d1, data_->split.d2, *anon_r_,
                                 *anon_s_, hc, legacy_oracle);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  obs::MetricsRegistry registry;
  CountingPlaintextOracle oracle(*rule_);
  auto session = LinkageSession()
                     .WithTables(data_->split.d1, data_->split.d2)
                     .WithReleases(*anon_r_, *anon_s_)
                     .WithConfig(hc)
                     .WithOracle(oracle)
                     .WithMetrics(&registry)
                     .Run();
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Attaching a registry must not perturb a single number.
  EXPECT_EQ(session->rows_r, legacy->rows_r);
  EXPECT_EQ(session->total_pairs, legacy->total_pairs);
  EXPECT_EQ(session->blocked_match_pairs, legacy->blocked_match_pairs);
  EXPECT_EQ(session->blocked_mismatch_pairs, legacy->blocked_mismatch_pairs);
  EXPECT_EQ(session->unknown_pairs, legacy->unknown_pairs);
  EXPECT_EQ(session->allowance_pairs, legacy->allowance_pairs);
  EXPECT_EQ(session->smc_processed, legacy->smc_processed);
  EXPECT_EQ(session->smc_matched, legacy->smc_matched);
  EXPECT_EQ(session->reported_matches, legacy->reported_matches);
  EXPECT_EQ(session->matched_row_pairs, legacy->matched_row_pairs);
}

TEST_F(SessionTest, PopulatesRegistryCountersAndSpans) {
  HybridConfig hc = DefaultConfig();
  obs::MetricsRegistry registry;
  CountingPlaintextOracle oracle(*rule_);
  auto out = LinkageSession()
                 .WithTables(data_->split.d1, data_->split.d2)
                 .WithReleases(*anon_r_, *anon_s_)
                 .WithConfig(hc)
                 .WithOracle(oracle)
                 .WithMetrics(&registry)
                 .WithEvaluation(true)
                 .Run();
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  auto counters = registry.CounterValues();
  EXPECT_EQ(counters.at("blocking.pairs_total"), out->total_pairs);
  EXPECT_EQ(counters.at("blocking.pairs_m"), out->blocked_match_pairs);
  EXPECT_EQ(counters.at("blocking.pairs_n"), out->blocked_mismatch_pairs);
  EXPECT_EQ(counters.at("blocking.pairs_u"), out->unknown_pairs);
  EXPECT_EQ(counters.at("smc.allowance_pairs"), out->allowance_pairs);
  EXPECT_EQ(counters.at("smc.invocations"), out->smc_processed);
  EXPECT_EQ(counters.at("smc.matched"), out->smc_matched);
  EXPECT_EQ(counters.at("linkage.reported_matches"), out->reported_matches);
  EXPECT_GT(counters.at("select.candidate_sequence_pairs"), 0);

  EXPECT_DOUBLE_EQ(registry.GaugeValues().at("blocking.efficiency"),
                   out->blocking_efficiency);

  auto spans = registry.Spans();
  for (const char* path :
       {"linkage", "linkage/block", "linkage/select", "linkage/smc",
        "linkage/evaluate"}) {
    ASSERT_TRUE(spans.count(path)) << path;
    EXPECT_EQ(spans.at(path).count, 1) << path;
  }
  // The stage spans partition the run span.
  EXPECT_GE(spans.at("linkage").total_seconds,
            spans.at("linkage/block").total_seconds +
                spans.at("linkage/select").total_seconds +
                spans.at("linkage/smc").total_seconds);

  // The expected-distance histogram saw every candidate sequence pair.
  EXPECT_EQ(registry.HistogramSummaries().at("select.expected_distance").count,
            counters.at("select.candidate_sequence_pairs"));
}

TEST_F(SessionTest, MissingIngredientsAreInvalidArgument) {
  HybridConfig hc = DefaultConfig();
  CountingPlaintextOracle oracle(*rule_);

  EXPECT_EQ(LinkageSession().Run().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LinkageSession()
                .WithTables(data_->split.d1, data_->split.d2)
                .Run()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LinkageSession()
                .WithTables(data_->split.d1, data_->split.d2)
                .WithReleases(*anon_r_, *anon_s_)
                .Run()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LinkageSession()
                .WithTables(data_->split.d1, data_->split.d2)
                .WithReleases(*anon_r_, *anon_s_)
                .WithConfig(hc)
                .Run()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, LegacyWrapperStillWorksWithoutMetrics) {
  HybridConfig hc = DefaultConfig();
  hc.smc_allowance_fraction = 0.0;
  CountingPlaintextOracle oracle(*rule_);
  auto out = RunHybridLinkage(data_->split.d1, data_->split.d2, *anon_r_,
                              *anon_s_, hc, oracle);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->smc_processed, 0);
  EXPECT_EQ(out->reported_matches, out->blocked_match_pairs);
}

}  // namespace
}  // namespace hprl
