#include <gtest/gtest.h>

#include "core/experiment.h"
#include "smc/smc_oracle.h"

namespace hprl {
namespace {

const ExperimentData& TinyData() {
  static const ExperimentData* data = [] {
    auto d = PrepareAdultData(300, 55);
    EXPECT_TRUE(d.ok());
    return new ExperimentData(std::move(d).value());
  }();
  return *data;
}

TEST(ExperimentDriverTest, PrepareValidatesRows) {
  EXPECT_FALSE(PrepareAdultData(2, 1).ok());
  auto ok = PrepareAdultData(9, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->split.d1.num_rows(), 6);
}

TEST(ExperimentDriverTest, ConfigValidation) {
  const auto& data = TinyData();
  EXPECT_FALSE(MakeAdultAnonConfig(data, 0, 4).ok());
  EXPECT_FALSE(MakeAdultAnonConfig(data, 9, 4).ok());
  auto cfg = MakeAdultAnonConfig(data, 8, 4);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->qid_attrs.size(), 8u);
  EXPECT_GE(cfg->class_attr, 0);
  EXPECT_FALSE(MakeAnonymizerByName("Nope", *cfg).ok());
}

TEST(ExperimentDriverTest, AllAnonymizersRunThroughTheDriver) {
  for (const char* method : {"MaxEntropy", "TDS", "DataFly", "Mondrian"}) {
    ExperimentConfig cfg;
    cfg.k = 4;
    cfg.anonymizer = method;
    cfg.smc_allowance_fraction = 1.0;
    auto out = RunAdultExperiment(TinyData(), cfg);
    ASSERT_TRUE(out.ok()) << method << ": " << out.status().ToString();
    EXPECT_DOUBLE_EQ(out->hybrid.recall, 1.0) << method;
    EXPECT_GT(out->sequences_r, 0);
  }
}

TEST(ExperimentDriverTest, SkippingRecallEvaluationLeavesSentinel) {
  ExperimentConfig cfg;
  cfg.k = 4;
  cfg.evaluate_recall = false;
  auto out = RunAdultExperiment(TinyData(), cfg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->hybrid.true_matches, -1);
}

// The whole pipeline driven by the REAL Paillier protocol end to end: the
// cryptographic oracle must produce exactly the plaintext oracle's outcome.
TEST(ExperimentDriverTest, RealSmcOracleMatchesPlaintextPipeline) {
  auto small = PrepareAdultData(60, 77);
  ASSERT_TRUE(small.ok());
  auto cfg = MakeAdultAnonConfig(*small, 3, 4);
  ASSERT_TRUE(cfg.ok());
  auto anonymizer = MakeMaxEntropyAnonymizer(*cfg);
  auto anon_r = anonymizer->Anonymize(small->split.d1);
  auto anon_s = anonymizer->Anonymize(small->split.d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());

  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(small->hierarchies.ByName(n));
  }
  auto rule = MakeUniformRule(small->schema, adult::AdultQidNames(), vghs, 3,
                              0.05);
  ASSERT_TRUE(rule.ok());

  HybridConfig hc;
  hc.rule = *rule;
  hc.smc_allowance_fraction = 1.0;

  CountingPlaintextOracle plain(*rule);
  auto expected = RunHybridLinkage(small->split.d1, small->split.d2, *anon_r,
                                   *anon_s, hc, plain);
  ASSERT_TRUE(expected.ok());

  smc::SmcConfig smc_cfg;
  smc_cfg.key_bits = 256;  // small key keeps the test fast; semantics equal
  smc_cfg.test_seed = 11;
  smc::SmcMatchOracle secure(smc_cfg, *rule);
  ASSERT_TRUE(secure.Init().ok());
  auto got = RunHybridLinkage(small->split.d1, small->split.d2, *anon_r,
                              *anon_s, hc, secure);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  EXPECT_EQ(got->reported_matches, expected->reported_matches);
  EXPECT_EQ(got->smc_matched, expected->smc_matched);
  EXPECT_EQ(got->smc_processed, expected->smc_processed);
  EXPECT_GT(secure.costs().encryptions, 0);
  EXPECT_GT(secure.bus().total_bytes(), 0);
}

}  // namespace
}  // namespace hprl
