#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/experiment.h"
#include "linkage/ground_truth.h"
#include "linkage/oracle.h"

namespace hprl {
namespace {

const ExperimentData& SmallData() {
  static const ExperimentData* data = [] {
    auto d = PrepareAdultData(900, 31);
    EXPECT_TRUE(d.ok());
    return new ExperimentData(std::move(d).value());
  }();
  return *data;
}

ExperimentConfig DefaultConfig() {
  ExperimentConfig cfg;
  cfg.k = 8;
  cfg.num_qids = 5;
  cfg.theta = 0.05;
  cfg.smc_allowance_fraction = 0.02;
  return cfg;
}

TEST(HybridPipelineTest, AccountingInvariantsHold) {
  auto out = RunAdultExperiment(SmallData(), DefaultConfig());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const HybridResult& h = out->hybrid;

  EXPECT_EQ(h.total_pairs,
            SmallData().split.d1.num_rows() * SmallData().split.d2.num_rows());
  EXPECT_EQ(h.blocked_match_pairs + h.blocked_mismatch_pairs + h.unknown_pairs,
            h.total_pairs);
  EXPECT_LE(h.smc_processed, h.allowance_pairs);
  EXPECT_LE(h.smc_processed, h.unknown_pairs);
  EXPECT_EQ(h.unprocessed_pairs, h.unknown_pairs - h.smc_processed);
  EXPECT_EQ(h.reported_matches, h.blocked_match_pairs + h.smc_matched);
  EXPECT_GE(h.blocking_efficiency, 0);
  EXPECT_LE(h.blocking_efficiency, 1);
}

TEST(HybridPipelineTest, PrecisionIsAlwaysPerfect) {
  // Verify the headline claim: every reported link is a true match. Collect
  // pairs and check them in the clear.
  const auto& data = SmallData();
  auto anon_cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(anon_cfg.ok());
  auto anonymizer = MakeMaxEntropyAnonymizer(*anon_cfg);
  auto anon_r = anonymizer->Anonymize(data.split.d1);
  auto anon_s = anonymizer->Anonymize(data.split.d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());

  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(data.hierarchies.ByName(n));
  }
  auto rule = MakeUniformRule(data.schema, adult::AdultQidNames(), vghs, 5,
                              0.05);
  ASSERT_TRUE(rule.ok());

  HybridConfig hc;
  hc.rule = *rule;
  hc.smc_allowance_fraction = 0.02;
  hc.collect_matches = true;
  CountingPlaintextOracle oracle(*rule);
  auto result = RunHybridLinkage(data.split.d1, data.split.d2, *anon_r,
                                 *anon_s, hc, oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(static_cast<int64_t>(result->matched_row_pairs.size()),
            result->reported_matches);
  for (const auto& [rr, sr] : result->matched_row_pairs) {
    EXPECT_TRUE(
        RecordsMatch(data.split.d1.row(rr), data.split.d2.row(sr), *rule));
  }
}

TEST(HybridPipelineTest, FullAllowanceReachesPerfectRecall) {
  ExperimentConfig cfg = DefaultConfig();
  cfg.smc_allowance_fraction = 1.0;  // no budget pressure
  auto out = RunAdultExperiment(SmallData(), cfg);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->hybrid.recall, 1.0);
  EXPECT_EQ(out->hybrid.unprocessed_pairs, 0);
}

TEST(HybridPipelineTest, ZeroAllowanceReliesOnBlockingOnly) {
  ExperimentConfig cfg = DefaultConfig();
  cfg.smc_allowance_fraction = 0.0;
  auto out = RunAdultExperiment(SmallData(), cfg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->hybrid.smc_processed, 0);
  EXPECT_EQ(out->hybrid.reported_matches, out->hybrid.blocked_match_pairs);
  EXPECT_LE(out->hybrid.recall, 1.0);
}

TEST(HybridPipelineTest, RecallMonotoneInAllowance) {
  double prev = -1;
  for (double allowance : {0.0, 0.005, 0.02, 0.1, 1.0}) {
    ExperimentConfig cfg = DefaultConfig();
    cfg.smc_allowance_fraction = allowance;
    auto out = RunAdultExperiment(SmallData(), cfg);
    ASSERT_TRUE(out.ok());
    EXPECT_GE(out->hybrid.recall, prev - 1e-12) << allowance;
    prev = out->hybrid.recall;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(HybridPipelineTest, KOneLabelsEverythingInBlocking) {
  // Paper §III extreme (1): with k=1 the releases are fully specific, so
  // blocking decides every pair and SMC costs vanish.
  ExperimentConfig cfg = DefaultConfig();
  cfg.k = 1;
  cfg.smc_allowance_fraction = 0.0;
  auto out = RunAdultExperiment(SmallData(), cfg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->hybrid.unknown_pairs, 0);
  EXPECT_DOUBLE_EQ(out->hybrid.blocking_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(out->hybrid.recall, 1.0);
}

TEST(HybridPipelineTest, HeuristicsBeatRandomUnderTightBudget) {
  // With a small allowance, expected-distance-guided selection should find
  // at least as many matches as random selection (the paper's motivation
  // for §V-C).
  double random_recall = 0, guided_recall = 0;
  {
    ExperimentConfig cfg = DefaultConfig();
    cfg.smc_allowance_fraction = 0.004;
    cfg.heuristic = SelectionHeuristic::kRandom;
    auto out = RunAdultExperiment(SmallData(), cfg);
    ASSERT_TRUE(out.ok());
    random_recall = out->hybrid.recall;
  }
  {
    ExperimentConfig cfg = DefaultConfig();
    cfg.smc_allowance_fraction = 0.004;
    cfg.heuristic = SelectionHeuristic::kMinAvgFirst;
    auto out = RunAdultExperiment(SmallData(), cfg);
    ASSERT_TRUE(out.ok());
    guided_recall = out->hybrid.recall;
  }
  EXPECT_GE(guided_recall, random_recall);
}

TEST(HybridPipelineTest, TighterThetaOnlyShrinksMatchedSet) {
  ExperimentConfig loose = DefaultConfig();
  loose.theta = 0.10;
  loose.smc_allowance_fraction = 1.0;
  ExperimentConfig tight = DefaultConfig();
  tight.theta = 0.01;
  tight.smc_allowance_fraction = 1.0;
  auto lo = RunAdultExperiment(SmallData(), loose);
  auto ti = RunAdultExperiment(SmallData(), tight);
  ASSERT_TRUE(lo.ok() && ti.ok());
  EXPECT_GE(lo->hybrid.true_matches, ti->hybrid.true_matches);
}

// ---------------------------------------------------------------- baselines

TEST(BaselinesTest, PureSmcIsExactButExpensive) {
  const auto& data = SmallData();
  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(data.hierarchies.ByName(n));
  }
  auto rule = MakeUniformRule(data.schema, adult::AdultQidNames(), vghs, 5,
                              0.05);
  ASSERT_TRUE(rule.ok());
  auto base = PureSmcBaseline(data.split.d1, data.split.d2, *rule);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->smc_processed,
            data.split.d1.num_rows() * data.split.d2.num_rows());
  EXPECT_DOUBLE_EQ(base->recall, 1.0);
  EXPECT_DOUBLE_EQ(base->precision, 1.0);
}

TEST(BaselinesTest, SanitizationTradesAccuracyForZeroCost) {
  const auto& data = SmallData();
  auto anon_cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(anon_cfg.ok());
  auto anonymizer = MakeMaxEntropyAnonymizer(*anon_cfg);
  auto anon_r = anonymizer->Anonymize(data.split.d1);
  auto anon_s = anonymizer->Anonymize(data.split.d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());
  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(data.hierarchies.ByName(n));
  }
  auto rule = MakeUniformRule(data.schema, adult::AdultQidNames(), vghs, 5,
                              0.05);
  ASSERT_TRUE(rule.ok());

  auto pess = SanitizationOnlyBaseline(data.split.d1, data.split.d2, *anon_r,
                                       *anon_s, *rule, /*optimistic=*/false);
  ASSERT_TRUE(pess.ok());
  EXPECT_EQ(pess->smc_processed, 0);
  EXPECT_DOUBLE_EQ(pess->precision, 1.0);
  EXPECT_LT(pess->recall, 1.0);  // 8-unit age leaves can never prove a match

  auto opt = SanitizationOnlyBaseline(data.split.d1, data.split.d2, *anon_r,
                                      *anon_s, *rule, /*optimistic=*/true);
  ASSERT_TRUE(opt.ok());
  EXPECT_GE(opt->recall, pess->recall);
}

}  // namespace
}  // namespace hprl
