// Tests for the real network transport (src/net): wire framing edge cases,
// the SocketBus over loopback TCP, the NetworkModel projection, and a
// hermetic three-daemon mesh (PartyService on threads) driven end to end by
// the RemoteSmcOracle — including the fault-retry and quarantine paths over
// real sockets.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/party_service.h"
#include "net/remote_oracle.h"
#include "net/socket.h"
#include "net/socket_bus.h"
#include "smc/channel.h"
#include "smc/network.h"
#include "smc/protocol.h"

namespace hprl {
namespace {

using net::DecodeFrame;
using net::EncodeFrame;
using net::Fd;
using net::FrameSize;
using net::MeshEndpoints;
using net::PartyService;
using net::PartyServiceOptions;
using net::PeerAddress;
using net::ReadFrame;
using net::RemoteOracleOptions;
using net::RemoteSmcOracle;
using net::SocketBus;
using net::SocketBusOptions;
using smc::Message;

// ------------------------------------------------------------------ helpers

/// One connected loopback TCP pair.
struct TcpPair {
  Fd a;  // accepted side
  Fd b;  // connected side
};

TcpPair MakeTcpPair() {
  auto listener = net::TcpListen(0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  auto port = net::LocalPort(*listener);
  EXPECT_TRUE(port.ok());
  auto client = net::TcpConnect("127.0.0.1", *port, 2000);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  auto served = net::TcpAccept(*listener, 2000);
  EXPECT_TRUE(served.ok()) << served.status().ToString();
  TcpPair pair;
  pair.a = std::move(*served);
  pair.b = std::move(*client);
  return pair;
}

Message MakeMessage() {
  Message msg;
  msg.from = "alice";
  msg.to = "bob";
  msg.tag = "alice_ct";
  msg.payload = {0x00, 0x01, 0xFF, 0x7E, 0x80, 0x00};
  msg.seq = 42;
  msg.checksum = smc::PayloadChecksum(msg.payload);
  return msg;
}

// ------------------------------------------------------------------ framing

TEST(FrameTest, RoundTripsMessageByteExactly) {
  Message msg = MakeMessage();
  std::vector<uint8_t> wire = EncodeFrame(msg);
  EXPECT_EQ(wire.size(), FrameSize(msg));

  // Body = everything after the 4-byte length prefix.
  auto back = DecodeFrame(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->from, msg.from);
  EXPECT_EQ(back->to, msg.to);
  EXPECT_EQ(back->tag, msg.tag);
  EXPECT_EQ(back->payload, msg.payload);
  EXPECT_EQ(back->seq, msg.seq);
  EXPECT_EQ(back->checksum, msg.checksum);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  Message msg;
  msg.from = "qp";
  msg.to = "alice";
  msg.tag = "result";
  msg.seq = 1;
  std::vector<uint8_t> wire = EncodeFrame(msg);
  auto back = DecodeFrame(wire.data() + 4, wire.size() - 4);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->payload.empty());
}

TEST(FrameTest, RejectsBadMagic) {
  Message msg = MakeMessage();
  std::vector<uint8_t> wire = EncodeFrame(msg);
  wire[4] ^= 0xFF;  // first magic byte
  auto back = DecodeFrame(wire.data() + 4, wire.size() - 4);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIOError);
}

TEST(FrameTest, RejectsVersionMismatch) {
  Message msg = MakeMessage();
  std::vector<uint8_t> wire = EncodeFrame(msg);
  // Body layout: magic u32, then version u16 (big-endian).
  wire[4 + 4] = 0xFF;
  wire[4 + 5] = 0xFE;
  auto back = DecodeFrame(wire.data() + 4, wire.size() - 4);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kIOError);
  EXPECT_NE(back.status().ToString().find("version"), std::string::npos);
}

TEST(FrameTest, RejectsTruncationAtEveryLength) {
  Message msg = MakeMessage();
  std::vector<uint8_t> wire = EncodeFrame(msg);
  // A frame cut anywhere inside the body must fail cleanly, never read
  // out of bounds (ASan guards the buffer) and never succeed.
  for (size_t n = 0; n + 4 < wire.size(); ++n) {
    auto back = DecodeFrame(wire.data() + 4, n);
    EXPECT_FALSE(back.ok()) << "truncated at " << n;
  }
}

TEST(FrameTest, ReadFrameRejectsOversizedLengthPrefix) {
  TcpPair pair = MakeTcpPair();
  // A hostile/corrupt length prefix far beyond kMaxFrameBytes must be
  // rejected before any allocation happens.
  const uint32_t huge = net::kMaxFrameBytes + 1;
  uint8_t prefix[4] = {static_cast<uint8_t>(huge >> 24),
                       static_cast<uint8_t>(huge >> 16),
                       static_cast<uint8_t>(huge >> 8),
                       static_cast<uint8_t>(huge)};
  ASSERT_TRUE(net::FullWrite(pair.b.get(), prefix, sizeof prefix).ok());
  auto got = ReadFrame(pair.a.get(), 1000);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST(FrameTest, ReadFrameReassemblesSplitWrites) {
  TcpPair pair = MakeTcpPair();
  Message msg = MakeMessage();
  std::vector<uint8_t> wire = EncodeFrame(msg);

  // Dribble the frame a few bytes at a time: the reader must loop over
  // short reads until the whole frame arrived.
  std::thread writer([&] {
    for (size_t off = 0; off < wire.size(); off += 3) {
      size_t n = std::min<size_t>(3, wire.size() - off);
      ASSERT_TRUE(net::FullWrite(pair.b.get(), wire.data() + off, n).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  size_t wire_bytes = 0;
  auto got = ReadFrame(pair.a.get(), 2000, &wire_bytes);
  writer.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(wire_bytes, wire.size());
  EXPECT_EQ(got->payload, msg.payload);
  EXPECT_EQ(got->seq, msg.seq);
}

TEST(FrameTest, ReadFrameTimesOutNotFoundWhenIdle) {
  TcpPair pair = MakeTcpPair();
  auto got = ReadFrame(pair.a.get(), 50);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

TEST(FrameTest, ReadFrameUnavailableOnPeerClose) {
  TcpPair pair = MakeTcpPair();
  pair.b.Close();
  auto got = ReadFrame(pair.a.get(), 1000);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
}

TEST(FrameTest, CtlPayloadHelpersRoundTrip) {
  std::vector<uint8_t> buf;
  net::AppendU8(7, &buf);
  net::AppendU32(123456, &buf);
  net::AppendU64(0xDEADBEEFCAFEBABEull, &buf);
  net::AppendI64(-987654321, &buf);
  net::AppendString("hello mesh", &buf);
  net::AppendSignedBigInt(crypto::BigInt(-31337), &buf);

  size_t off = 0;
  EXPECT_EQ(net::ConsumeU8(buf, &off).value(), 7);
  EXPECT_EQ(net::ConsumeU32(buf, &off).value(), 123456u);
  EXPECT_EQ(net::ConsumeU64(buf, &off).value(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(net::ConsumeI64(buf, &off).value(), -987654321);
  EXPECT_EQ(net::ConsumeString(buf, &off).value(), "hello mesh");
  EXPECT_EQ(net::ConsumeSignedBigInt(buf, &off).value(), crypto::BigInt(-31337));
  EXPECT_EQ(off, buf.size());

  // Truncated consumption fails instead of reading past the end.
  buf.resize(buf.size() - 1);
  off = 0;
  (void)net::ConsumeU8(buf, &off);
  (void)net::ConsumeU32(buf, &off);
  (void)net::ConsumeU64(buf, &off);
  (void)net::ConsumeI64(buf, &off);
  (void)net::ConsumeString(buf, &off);
  EXPECT_FALSE(net::ConsumeSignedBigInt(buf, &off).ok());
}

TEST(FrameTest, PairSlotsRoundTrip) {
  std::vector<net::PairSlot> slots(3);
  slots[0] = {7, StatusCode::kOk, 1};
  slots[1] = {8, StatusCode::kIOError, 0};
  slots[2] = {12345678901234ull, StatusCode::kNotFound, 0};
  std::vector<uint8_t> buf;
  net::AppendPairSlots(slots, &buf);

  size_t off = 0;
  auto back = net::ParsePairSlots(buf, &off);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(off, buf.size());
  ASSERT_EQ(back->size(), slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ((*back)[i].pair_index, slots[i].pair_index) << i;
    EXPECT_EQ((*back)[i].code, slots[i].code) << i;
    EXPECT_EQ((*back)[i].label, slots[i].label) << i;
  }
}

TEST(FrameTest, PairSlotsRejectTruncationAtEveryLength) {
  std::vector<net::PairSlot> slots(2);
  slots[0] = {1, StatusCode::kOk, 1};
  slots[1] = {2, StatusCode::kUnavailable, 0};
  std::vector<uint8_t> buf;
  net::AppendPairSlots(slots, &buf);
  for (size_t n = 0; n < buf.size(); ++n) {
    std::vector<uint8_t> cut(buf.begin(), buf.begin() + n);
    size_t off = 0;
    EXPECT_FALSE(net::ParsePairSlots(cut, &off).ok()) << "truncated at " << n;
  }
}

TEST(FrameTest, PairSlotsRejectUnknownStatusCode) {
  std::vector<net::PairSlot> slots(1);
  slots[0] = {1, StatusCode::kOk, 1};
  std::vector<uint8_t> buf;
  net::AppendPairSlots(slots, &buf);
  buf[buf.size() - 2] = 0xEE;  // the slot's status-code byte
  size_t off = 0;
  EXPECT_FALSE(net::ParsePairSlots(buf, &off).ok());
}

// ----------------------------------------------- error attribution (bus)

TEST(ChannelAttributionTest, ChecksumErrorNamesLinkAndTag) {
  smc::MessageBus bus;
  Message msg;
  msg.from = "alice";
  msg.to = "bob";
  msg.tag = "alice_ct";
  msg.payload = {1, 2, 3};
  msg.checksum = 777;  // wrong, and non-zero so Stamp keeps it
  bus.Send(std::move(msg));

  auto got = bus.Expect("bob", "alice_ct");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  std::string text = got.status().ToString();
  EXPECT_NE(text.find("alice->bob"), std::string::npos) << text;
  EXPECT_NE(text.find("alice_ct"), std::string::npos) << text;
}

TEST(ChannelAttributionTest, TagMismatchNamesLinkAndBothTags) {
  smc::MessageBus bus;
  Message msg;
  msg.from = "bob";
  msg.to = "qp";
  msg.tag = "bob_ct";
  msg.payload = {9};
  bus.Send(std::move(msg));

  auto got = bus.Expect("qp", "result");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  std::string text = got.status().ToString();
  EXPECT_NE(text.find("bob->qp"), std::string::npos) << text;
  EXPECT_NE(text.find("result"), std::string::npos) << text;
  EXPECT_NE(text.find("bob_ct"), std::string::npos) << text;
}

// ----------------------------------------------------------- NetworkModel

TEST(NetworkModelTest, EstimateSecondsMonotonic) {
  smc::SmcCosts costs;
  costs.encryptions = 100;
  costs.decryptions = 50;
  costs.homomorphic_adds = 200;
  costs.scalar_muls = 100;

  smc::CryptoTimings crypto;
  crypto.key_bits = 1024;
  crypto.encrypt_seconds = 1e-3;
  crypto.decrypt_seconds = 1e-3;
  crypto.hom_add_seconds = 1e-5;
  crypto.scalar_mul_seconds = 1e-4;

  const int64_t bytes = 1 << 20;
  const int64_t messages = 1000;
  smc::NetworkModel lan = smc::NetworkModel::Lan();
  const double base = EstimateSeconds(costs, bytes, messages, lan, crypto);
  ASSERT_GT(base, 0);

  // More latency costs more.
  smc::NetworkModel slow_latency = lan;
  slow_latency.latency_seconds = lan.latency_seconds * 10;
  EXPECT_GT(EstimateSeconds(costs, bytes, messages, slow_latency, crypto),
            base);

  // Less bandwidth costs more.
  smc::NetworkModel thin_pipe = lan;
  thin_pipe.bandwidth_bytes_per_second = lan.bandwidth_bytes_per_second / 100;
  EXPECT_GT(EstimateSeconds(costs, bytes, messages, thin_pipe, crypto), base);

  // More messages cost more (each pays a latency).
  EXPECT_GT(EstimateSeconds(costs, bytes, messages * 10, lan, crypto), base);

  // More traffic costs more.
  EXPECT_GT(EstimateSeconds(costs, bytes * 100, messages, lan, crypto), base);

  // WAN dominates LAN on the same workload.
  EXPECT_GT(
      EstimateSeconds(costs, bytes, messages, smc::NetworkModel::Wan(), crypto),
      EstimateSeconds(costs, bytes, messages, lan, crypto));

  // The in-process model charges no transport at all: pure crypto time.
  const double local = EstimateSeconds(costs, bytes, messages,
                                       smc::NetworkModel::Local(), crypto);
  EXPECT_LT(local, base);
  EXPECT_GT(local, 0);
}

// -------------------------------------------------------------- SocketBus

/// Starts a two-node mesh: "alice" listens, "bob" dials.
struct BusPair {
  std::unique_ptr<SocketBus> alice;
  std::unique_ptr<SocketBus> bob;
};

BusPair MakeBusPair(int receive_timeout_ms = 2000) {
  SocketBusOptions a;
  a.local_name = "alice";
  a.listen = true;
  a.accept_from = {"bob"};
  a.connect_timeout_ms = 5000;
  a.receive_timeout_ms = receive_timeout_ms;
  a.flush_timeout_ms = 2000;
  BusPair pair;
  pair.alice = std::make_unique<SocketBus>(a);

  // Start the listener first on a thread (it blocks until bob dials in).
  std::atomic<bool> alice_ok{false};
  std::thread alice_start([&] { alice_ok = pair.alice->Start().ok(); });
  // Wait until the listener's port is known.
  for (int i = 0; i < 100 && pair.alice->listen_port() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(pair.alice->listen_port(), 0);

  SocketBusOptions b;
  b.local_name = "bob";
  b.dial = {{"alice", "127.0.0.1", pair.alice->listen_port()}};
  b.connect_timeout_ms = 5000;
  b.receive_timeout_ms = receive_timeout_ms;
  b.flush_timeout_ms = 2000;
  pair.bob = std::make_unique<SocketBus>(b);
  EXPECT_TRUE(pair.bob->Start().ok());
  alice_start.join();
  EXPECT_TRUE(alice_ok);
  return pair;
}

TEST(SocketBusTest, DeliversStampedMessagesBothWays) {
  BusPair mesh = MakeBusPair();

  Message ping;
  ping.from = "bob";
  ping.to = "alice";
  ping.tag = "ping";
  ping.payload = {1, 2, 3, 4};
  mesh.bob->Send(ping);

  auto got = mesh.alice->Expect("alice", "ping");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->payload, ping.payload);
  EXPECT_GT(got->seq, 0u);  // stamped by the sender's bus
  EXPECT_EQ(got->checksum, smc::PayloadChecksum(ping.payload));

  Message pong;
  pong.from = "alice";
  pong.to = "bob";
  pong.tag = "pong";
  pong.payload = {9};
  mesh.alice->Send(pong);
  auto back = mesh.bob->Expect("bob", "pong");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->payload, pong.payload);

  EXPECT_TRUE(mesh.alice->PeerAlive("bob"));
  EXPECT_TRUE(mesh.bob->PeerAlive("alice"));
}

TEST(SocketBusTest, AccountsFramedWireSizeWithinFivePercent) {
  BusPair mesh = MakeBusPair();

  Message msg;
  msg.from = "bob";
  msg.to = "alice";
  msg.tag = "bulk";
  msg.payload.assign(4096, 0xAB);
  for (int i = 0; i < 20; ++i) {
    mesh.bob->Send(msg);
    ASSERT_TRUE(mesh.alice->Expect("alice", "bulk").ok());
  }

  // The bus accounting charges the framed wire size; the socket counters are
  // ground truth. They differ only by the unaccounted hello handshake, which
  // is why the acceptance bound is a percentage, not equality.
  const int64_t accounted = mesh.bob->total_bytes();
  const int64_t wire = mesh.bob->net_stats().bytes_sent;
  ASSERT_GT(accounted, 20 * 4096);
  EXPECT_GE(wire, accounted);
  EXPECT_LT(static_cast<double>(wire - accounted), 0.05 * wire);

  // Receiver-side socket counter sees the same traffic.
  EXPECT_GE(mesh.alice->net_stats().bytes_received, accounted);
}

TEST(SocketBusTest, ReceiveTimesOutAsNotFound) {
  BusPair mesh = MakeBusPair(/*receive_timeout_ms=*/100);
  auto got = mesh.alice->Receive("alice");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
}

/// Starts a listening "alice" bus and hands back a raw TCP connection that
/// has already completed the hello handshake as "bob" — for tests that need
/// byte-level control over what the epoll read path sees.
struct RawPeer {
  std::unique_ptr<SocketBus> alice;
  Fd sock;
};

RawPeer MakeRawPeer(int receive_timeout_ms = 2000) {
  SocketBusOptions a;
  a.local_name = "alice";
  a.listen = true;
  a.accept_from = {"bob"};
  a.connect_timeout_ms = 5000;
  a.receive_timeout_ms = receive_timeout_ms;
  RawPeer peer;
  peer.alice = std::make_unique<SocketBus>(a);
  std::thread alice_start([&] { EXPECT_TRUE(peer.alice->Start().ok()); });
  for (int i = 0; i < 100 && peer.alice->listen_port() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(peer.alice->listen_port(), 0);

  auto sock = net::TcpConnect("127.0.0.1", peer.alice->listen_port(), 2000);
  EXPECT_TRUE(sock.ok());
  peer.sock = std::move(*sock);

  // Unstamped hello (seq 0, checksum 0), exactly what Dial sends.
  Message hello;
  hello.from = "bob";
  hello.to = "alice";
  hello.tag = "hprl.hello";
  EXPECT_TRUE(net::WriteFrame(peer.sock.get(), hello).ok());
  alice_start.join();
  return peer;
}

Message RawFrame(uint64_t seq, std::vector<uint8_t> payload) {
  Message msg;
  msg.from = "bob";
  msg.to = "alice";
  msg.tag = "chunked";
  msg.payload = std::move(payload);
  msg.seq = seq;
  msg.checksum = smc::PayloadChecksum(msg.payload);
  return msg;
}

// Frames dribbled onto the wire a few bytes per write — every header field
// and the payload straddle read() boundaries. The reassembly buffer must
// deliver each frame intact the moment its last byte arrives, no matter how
// the kernel slices the stream.
TEST(SocketBusTest, ReassemblesFramesDribbledInTinyChunks) {
  RawPeer peer = MakeRawPeer();

  std::vector<uint8_t> stream;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    std::vector<uint8_t> wire =
        EncodeFrame(RawFrame(seq, {uint8_t(seq), 0xBE, uint8_t(0xF0 + seq)}));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  for (size_t off = 0; off < stream.size(); off += 7) {
    const size_t n = std::min<size_t>(7, stream.size() - off);
    ASSERT_TRUE(net::FullWrite(peer.sock.get(), stream.data() + off, n).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (uint64_t seq = 1; seq <= 3; ++seq) {
    auto got = peer.alice->Expect("alice", "chunked");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->seq, seq);
    std::vector<uint8_t> want = {uint8_t(seq), 0xBE, uint8_t(0xF0 + seq)};
    EXPECT_EQ(got->payload, want);
  }
  peer.alice->Stop();
}

// The opposite slicing: many frames coalesced into one write arrive as one
// read burst, and the batched parse must deliver every one of them, in
// order, from that single burst.
TEST(SocketBusTest, DeliversEveryFrameFromOneCoalescedWrite) {
  RawPeer peer = MakeRawPeer();

  constexpr int kFrames = 16;
  std::vector<uint8_t> stream;
  for (uint64_t seq = 1; seq <= kFrames; ++seq) {
    std::vector<uint8_t> payload(64 + seq, static_cast<uint8_t>(seq));
    std::vector<uint8_t> wire = EncodeFrame(RawFrame(seq, std::move(payload)));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  ASSERT_TRUE(
      net::FullWrite(peer.sock.get(), stream.data(), stream.size()).ok());

  for (uint64_t seq = 1; seq <= kFrames; ++seq) {
    auto got = peer.alice->Expect("alice", "chunked");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->seq, seq);
    ASSERT_EQ(got->payload.size(), 64 + seq);
    EXPECT_EQ(got->payload[0], static_cast<uint8_t>(seq));
  }
  peer.alice->Stop();
}

TEST(SocketBusTest, SubInboxRoutesBySuffix) {
  BusPair mesh = MakeBusPair();
  Message ctl;
  ctl.from = "bob";
  ctl.to = "alice:ctl";
  ctl.tag = "cfg";
  ctl.payload = {1};
  mesh.bob->Send(ctl);

  // Nothing lands in the main inbox; the ctl sub-inbox gets it.
  auto main_inbox = mesh.alice->Receive("alice");
  EXPECT_FALSE(main_inbox.ok());
  auto sub = mesh.alice->Expect("alice:ctl", "cfg");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub->payload, std::vector<uint8_t>{1});
}

TEST(SocketBusTest, FlushBarrierDiscardsInFlightTraffic) {
  BusPair mesh = MakeBusPair();

  // Bob leaves two stale protocol messages in flight, then both sides enter
  // the barrier. After it, alice's inbox must be clean.
  Message junk;
  junk.from = "bob";
  junk.to = "alice";
  junk.tag = "alice_ct";
  junk.payload = {7, 7, 7};
  mesh.bob->Send(junk);
  mesh.bob->Send(junk);

  std::atomic<bool> bob_ok{false};
  std::thread bob_flush(
      [&] { bob_ok = mesh.bob->Flush({"alice"}, /*barrier_id=*/5).ok(); });
  Status alice_flush = mesh.alice->Flush({"bob"}, /*barrier_id=*/5);
  bob_flush.join();
  EXPECT_TRUE(alice_flush.ok()) << alice_flush.ToString();
  EXPECT_TRUE(bob_ok);

  auto after = mesh.alice->Receive("alice");
  EXPECT_FALSE(after.ok()) << "stale message survived the barrier";
  EXPECT_GE(mesh.alice->net_stats().stale_dropped, 2);
}

TEST(SocketBusTest, FlushExemptsHeartbeatSubInbox) {
  BusPair mesh = MakeBusPair(/*receive_timeout_ms=*/200);

  // Three messages are in flight when the barrier runs: stale protocol
  // traffic for the main inbox, a stale result for the ":res" sub-inbox,
  // and a liveness probe for ":hb". The barrier must discard the first two
  // but NEVER the heartbeat — a purge that ate probes would read as a
  // missed probe and could tip a healthy replica into suspect during a
  // perfectly normal retry flush.
  Message junk;
  junk.from = "bob";
  junk.to = "alice";
  junk.tag = "alice_ct";
  junk.payload = {7};
  mesh.bob->Send(junk);
  Message res;
  res.from = "bob";
  res.to = "alice:res";
  res.tag = "result";
  res.payload = {3};
  mesh.bob->Send(res);
  Message hb;
  hb.from = "bob";
  hb.to = "alice:hb";
  hb.tag = "hb";
  hb.payload = {9};
  mesh.bob->Send(hb);

  std::atomic<bool> bob_ok{false};
  std::thread bob_flush(
      [&] { bob_ok = mesh.bob->Flush({"alice"}, /*barrier_id=*/6).ok(); });
  Status alice_flush = mesh.alice->Flush({"bob"}, /*barrier_id=*/6);
  bob_flush.join();
  EXPECT_TRUE(alice_flush.ok()) << alice_flush.ToString();
  EXPECT_TRUE(bob_ok);

  EXPECT_FALSE(mesh.alice->Receive("alice").ok())
      << "stale main-inbox message survived the barrier";
  EXPECT_FALSE(mesh.alice->Receive("alice:res").ok())
      << "stale sub-inbox message survived the barrier";
  auto probe = mesh.alice->Expect("alice:hb", "hb");
  ASSERT_TRUE(probe.ok()) << "barrier swallowed a heartbeat: "
                          << probe.status().ToString();
  EXPECT_EQ(probe->payload, std::vector<uint8_t>{9});
}

TEST(SocketBusTest, DeadPeerStopsBeingAliveAndFlushFails) {
  BusPair mesh = MakeBusPair(/*receive_timeout_ms=*/200);
  mesh.bob->Stop();

  // The reader notices the closed link quickly.
  for (int i = 0; i < 100 && mesh.alice->PeerAlive("bob"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(mesh.alice->PeerAlive("bob"));

  Status flush = mesh.alice->Flush({"bob"}, 9);
  ASSERT_FALSE(flush.ok());
  EXPECT_EQ(flush.code(), StatusCode::kUnavailable);

  // Sends to the dead link are dropped and counted, never crash.
  Message msg;
  msg.from = "alice";
  msg.to = "bob";
  msg.tag = "ping";
  mesh.alice->Send(msg);
  EXPECT_GE(mesh.alice->net_stats().send_errors, 1);
}

// ------------------------------------------------------- three-party mesh

MatchRule MixedRule() {
  MatchRule rule;
  AttrRule cat;
  cat.attr_index = 0;
  cat.type = AttrType::kCategorical;
  cat.theta = 0.5;
  AttrRule num;
  num.attr_index = 1;
  num.type = AttrType::kNumeric;
  num.theta = 0.1;
  num.norm = 100;  // |x-y| <= 10 matches
  rule.attrs = {cat, num};
  return rule;
}

Record Rec(int32_t cat, double num) {
  return {Value::Category(cat), Value::Numeric(num)};
}

/// Three PartyService daemons on threads plus a RemoteSmcOracle coordinator
/// in the test thread — the full TCP deployment, hermetically in one
/// process.
class MeshTest : public ::testing::Test {
 protected:
  void StartMesh(int receive_timeout_ms) {
    // Three kernel-assigned ports, all held while read.
    Fd holds[3];
    uint16_t ports[3];
    for (int i = 0; i < 3; ++i) {
      auto listener = net::TcpListen(0);
      ASSERT_TRUE(listener.ok());
      auto port = net::LocalPort(*listener);
      ASSERT_TRUE(port.ok());
      ports[i] = *port;
      holds[i] = std::move(*listener);
    }
    for (int i = 0; i < 3; ++i) holds[i].Close();
    endpoints_.alice = {"alice", "127.0.0.1", ports[0]};
    endpoints_.bob = {"bob", "127.0.0.1", ports[1]};
    endpoints_.qp = {"qp", "127.0.0.1", ports[2]};

    for (const char* role : {"alice", "bob", "qp"}) {
      PartyServiceOptions opts;
      opts.role = role;
      opts.endpoints = endpoints_;
      opts.connect_timeout_ms = 10000;
      opts.receive_timeout_ms = receive_timeout_ms;
      services_.push_back(std::make_unique<PartyService>(opts));
    }
    for (size_t i = 0; i < services_.size(); ++i) {
      threads_.emplace_back([this, i, s = services_[i].get()] {
        Status started = s->Start();
        ASSERT_TRUE(started.ok()) << started.ToString();
        Status served = s->Serve();
        // An injected crash makes that one daemon's serve loop exit with the
        // transport error — expected for roles the test crashed on purpose.
        EXPECT_TRUE(served.ok() || may_crash_[i].load()) << served.ToString();
      });
    }
  }

  std::unique_ptr<RemoteSmcOracle> MakeOracle(int receive_timeout_ms,
                                              int rpc_batch = 0,
                                              int rpc_window = 0) {
    RemoteOracleOptions opts;
    opts.config.key_bits = 256;  // small key: fast tests
    opts.config.test_seed = 4242;
    opts.config.max_retries = 3;
    opts.rule = MixedRule();
    opts.endpoints = endpoints_;
    opts.connect_timeout_ms = 10000;
    opts.receive_timeout_ms = receive_timeout_ms;
    if (rpc_batch > 0) opts.rpc_batch_pairs = rpc_batch;
    if (rpc_window > 0) opts.rpc_window = rpc_window;
    return std::make_unique<RemoteSmcOracle>(opts);
  }

  /// Tears one daemon down completely: serve loop, then the bus (only the
  /// destructor closes the links, mirroring a killed process).
  void KillService(size_t i) {
    services_[i]->RequestStop();
    threads_[i].join();
    services_[i].reset();
  }

  void TearDown() override {
    for (auto& service : services_) {
      if (service != nullptr) service->RequestStop();
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    services_.clear();
  }

  MeshEndpoints endpoints_;
  std::vector<std::unique_ptr<PartyService>> services_;
  std::vector<std::thread> threads_;
  std::array<std::atomic<bool>, 3> may_crash_{};  // alice, bob, qp
};

/// Six record pairs with known plaintext outcomes, ids 0..5 / 100..105.
std::vector<std::pair<Record, Record>> SixPairs() {
  return {
      {Rec(3, 50), Rec(3, 55)},   // match
      {Rec(3, 50), Rec(4, 55)},   // cat differs
      {Rec(1, 10), Rec(1, 90)},   // numeric too far
      {Rec(2, 70), Rec(2, 70)},   // exact
      {Rec(5, 30), Rec(5, 41)},   // just over
      {Rec(5, 30), Rec(5, 40)},   // at the threshold
  };
}

std::vector<RowPairRequest> PairBatch(
    const std::vector<std::pair<Record, Record>>& pairs) {
  std::vector<RowPairRequest> batch;
  batch.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    RowPairRequest req;
    req.a_id = static_cast<int64_t>(i);
    req.b_id = static_cast<int64_t>(100 + i);
    req.a = &pairs[i].first;
    req.b = &pairs[i].second;
    batch.push_back(req);
  }
  return batch;
}

TEST_F(MeshTest, EndToEndLabelsMatchInProcessProtocol) {
  StartMesh(/*receive_timeout_ms=*/2000);
  auto oracle = MakeOracle(2000);
  ASSERT_TRUE(oracle->Init().ok());

  // Reference: the in-process comparator with the same config.
  smc::SmcConfig cfg;
  cfg.key_bits = 256;
  cfg.test_seed = 4242;
  smc::SecureRecordComparator reference(cfg, MixedRule());
  ASSERT_TRUE(reference.Init().ok());

  const std::vector<std::pair<Record, Record>> pairs = {
      {Rec(3, 50), Rec(3, 55)},   // match: same cat, |Δ|=5 <= 10
      {Rec(3, 50), Rec(4, 55)},   // cat differs
      {Rec(1, 10), Rec(1, 90)},   // numeric too far
      {Rec(2, 70), Rec(2, 70)},   // exact
      {Rec(5, 30), Rec(5, 41)},   // just over the threshold
      {Rec(5, 30), Rec(5, 40)},   // exactly at the threshold
  };
  std::vector<RowPairRequest> batch;
  batch.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    RowPairRequest req;
    req.a_id = static_cast<int64_t>(i);
    req.b_id = static_cast<int64_t>(100 + i);
    req.a = &pairs[i].first;
    req.b = &pairs[i].second;
    batch.push_back(req);
  }

  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto expected = reference.Compare(pairs[i].first, pairs[i].second);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ((*labels)[i], *expected ? kPairMatch : kPairNonMatch)
        << "pair " << i;
    // And both agree with the plaintext rule: SMC is exact.
    EXPECT_EQ(*expected, RecordsMatch(pairs[i].first, pairs[i].second,
                                      MixedRule()))
        << "pair " << i;
  }
  EXPECT_EQ(oracle->invocations(), static_cast<int64_t>(pairs.size()));
  EXPECT_EQ(oracle->pairs_quarantined(), 0);

  auto mesh = oracle->CollectStats();
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->costs.invocations, static_cast<int64_t>(pairs.size()));
  EXPECT_GT(mesh->costs.encryptions, 0);
  EXPECT_GT(mesh->costs.decryptions, 0);
  // Acceptance bound: measured wire bytes within 5% of bus accounting.
  ASSERT_GT(mesh->bus_bytes, 0);
  double drift = static_cast<double>(mesh->wire_bytes_sent - mesh->bus_bytes) /
                 static_cast<double>(mesh->wire_bytes_sent);
  EXPECT_GE(drift, 0) << "bus accounted more than the sockets carried";
  EXPECT_LT(drift, 0.05);

  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

TEST_F(MeshTest, InjectedFaultIsRetriedAndHeals) {
  StartMesh(/*receive_timeout_ms=*/500);
  auto oracle = MakeOracle(500);
  ASSERT_TRUE(oracle->Init().ok());

  // The next pair command on bob fails before running; the coordinator must
  // flush the mesh and re-dispatch, and the retry must produce the right
  // label — over real sockets, with real in-flight leftovers to discard.
  ASSERT_TRUE(oracle->InjectFailures("bob", 1).ok());

  Record a = Rec(3, 50), b = Rec(3, 55);
  std::vector<RowPairRequest> batch(1);
  batch[0].a_id = 1;
  batch[0].b_id = 2;
  batch[0].a = &a;
  batch[0].b = &b;
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  EXPECT_EQ((*labels)[0], kPairMatch);
  EXPECT_GE(oracle->retries(), 1);
  EXPECT_EQ(oracle->pairs_quarantined(), 0);

  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

TEST_F(MeshTest, DeadPartyQuarantinesPair) {
  StartMesh(/*receive_timeout_ms=*/300);
  auto oracle = MakeOracle(300);
  ASSERT_TRUE(oracle->Init().ok());

  // Kill bob outright: its serve thread exits and its bus closes. The
  // coordinator must quarantine the pair (never retry a dead party), exactly
  // like the in-process engine does on a crash fault.
  KillService(1);
  // Wait until the coordinator's link to bob actually drops.
  for (int i = 0; i < 200 && oracle->bus().PeerAlive("bob"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(oracle->bus().PeerAlive("bob"));

  Record a = Rec(3, 50), b = Rec(3, 55);
  std::vector<RowPairRequest> batch(1);
  batch[0].a_id = 1;
  batch[0].b_id = 2;
  batch[0].a = &a;
  batch[0].b = &b;
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  EXPECT_EQ((*labels)[0], kPairQuarantined);
  EXPECT_EQ(oracle->pairs_quarantined(), 1);

  // Shutdown is best-effort with a dead party; it must not hang.
  (void)oracle->Shutdown(/*stop_daemons=*/true);
}

// rpc_batch = 1 is the degenerate pipelined mode: it must take the literal
// per-pair round-trip path and produce exactly the plaintext-rule labels the
// batched mode produces (EndToEndLabelsMatchInProcessProtocol pins the
// batched mode to the same reference).
TEST_F(MeshTest, BatchSizeOneDegeneratesToPerPairRoundTrips) {
  StartMesh(/*receive_timeout_ms=*/2000);
  auto oracle = MakeOracle(2000, /*rpc_batch=*/1);
  ASSERT_TRUE(oracle->Init().ok());

  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*labels)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  // Per-pair mode pays one ctl round trip per pair ...
  EXPECT_EQ(oracle->ctl_round_trips(), static_cast<int64_t>(pairs.size()));
  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

TEST_F(MeshTest, BatchedModeCollapsesCtlRoundTrips) {
  StartMesh(/*receive_timeout_ms=*/2000);
  auto oracle = MakeOracle(2000, /*rpc_batch=*/32, /*rpc_window=*/4);
  ASSERT_TRUE(oracle->Init().ok());

  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  // ... while the batched mode ships all six pairs in ONE frame.
  EXPECT_EQ(oracle->ctl_round_trips(), 1) << "retries=" << oracle->retries();
  EXPECT_EQ(oracle->pairs_quarantined(), 0);
  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

// A transient fault inside one batch only retries the slots it touched: the
// injected pair fails, the daemons positionally skip the rest of that batch,
// the other batch of the window completes untouched, and one extra round
// heals everything — no quarantine, exact labels.
TEST_F(MeshTest, MidBatchTransientFaultHealsOnlyAffectedSlots) {
  StartMesh(/*receive_timeout_ms=*/500);
  auto oracle = MakeOracle(500, /*rpc_batch=*/3, /*rpc_window=*/2);
  ASSERT_TRUE(oracle->Init().ok());
  ASSERT_TRUE(oracle->InjectFailures("bob", 1).ok());

  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*labels)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_GE(oracle->retries(), 1);
  EXPECT_EQ(oracle->pairs_quarantined(), 0);
  // Two first-round batches plus at least one retry batch.
  EXPECT_GE(oracle->ctl_round_trips(), 3);
  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

// A party that DIES mid-batch (no reply, bus down — a real process death,
// not a clean error) must quarantine the affected pairs and never fabricate
// a label; the coordinator and the surviving daemons keep running.
TEST_F(MeshTest, MidBatchCrashQuarantinesWithoutFalseLabels) {
  StartMesh(/*receive_timeout_ms=*/300);
  auto oracle = MakeOracle(300, /*rpc_batch=*/2, /*rpc_window=*/2);
  ASSERT_TRUE(oracle->Init().ok());
  may_crash_[1] = true;  // bob's serve loop may exit with the transport error
  ASSERT_TRUE(oracle->InjectFailures("bob", 1, /*crash=*/true).ok());

  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), pairs.size());
  int64_t quarantined = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if ((*labels)[i] == kPairQuarantined) {
      ++quarantined;
      continue;
    }
    // Any label the run did commit must be the exact plaintext outcome.
    EXPECT_EQ((*labels)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_GE(quarantined, 1);
  EXPECT_EQ(oracle->pairs_quarantined(), quarantined);

  // Shutdown is best-effort with a dead party; it must not hang.
  (void)oracle->Shutdown(/*stop_daemons=*/true);
}

// A relaunched coordinator resumes at a strictly higher session epoch: the
// daemons adopt it on the resume configure, the resumed session's own work
// runs untouched, and a work frame the crashed predecessor left in flight —
// stamped with the superseded epoch — is fenced on every daemon: refused
// with FailedPrecondition, never executed, epoch intact.
TEST_F(MeshTest, RelaunchedCoordinatorFencesPredecessorsFrames) {
  StartMesh(/*receive_timeout_ms=*/2000);
  auto oracle = MakeOracle(2000);
  ASSERT_TRUE(oracle->Init().ok());
  for (auto& s : services_) {
    EXPECT_EQ(s->epoch(), 1u);
    EXPECT_EQ(s->fenced_requests(), 0);
  }

  // Coordinator "crash": the first session goes away, daemons keep serving.
  ASSERT_TRUE(oracle->Shutdown(/*stop_daemons=*/false).ok());
  oracle.reset();

  // The relaunch resumes at epoch 2 (what the CLI derives from a recovered
  // session journal: its epoch + 1).
  RemoteOracleOptions opts;
  opts.config.key_bits = 256;
  opts.config.test_seed = 4242;
  opts.config.max_retries = 3;
  opts.rule = MixedRule();
  opts.endpoints = endpoints_;
  opts.connect_timeout_ms = 10000;
  opts.receive_timeout_ms = 2000;
  opts.session_epoch = 2;
  auto resumed = std::make_unique<RemoteSmcOracle>(opts);
  ASSERT_TRUE(resumed->Init().ok());
  for (auto& s : services_) EXPECT_EQ(s->epoch(), 2u);

  const auto pairs = SixPairs();
  auto labels = resumed->CompareBatch(PairBatch(pairs));
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*labels)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_EQ(resumed->pairs_quarantined(), 0);
  ASSERT_TRUE(resumed->Shutdown(/*stop_daemons=*/false).ok());
  resumed.reset();

  // The predecessor's leftover: a work verb at the superseded epoch 1,
  // delivered straight onto the ctl plane by a raw bus posing as the dead
  // coordinator process.
  SocketBusOptions bopts;
  bopts.local_name = "coord";
  bopts.dial = {endpoints_.alice, endpoints_.bob, endpoints_.qp};
  bopts.connect_timeout_ms = 5000;
  bopts.receive_timeout_ms = 2000;
  SocketBus zombie(bopts);
  ASSERT_TRUE(zombie.Start().ok());
  for (const char* role : {"alice", "bob", "qp"}) {
    net::CtlRequest req;
    req.verb = net::CtlVerb::kPurge;
    req.epoch = 1;
    net::AppendU64(7, &req.body);  // barrier id, never honored
    zombie.Send(net::EncodeCtlRequest("coord", role, req));
  }
  std::map<std::string, net::CtlResponse> replies;
  while (replies.size() < 3) {
    auto msg = zombie.ReceiveTimeout("coord", 2000);
    ASSERT_TRUE(msg.ok()) << msg.status().ToString();
    if (msg->tag != net::kCtlReply) continue;
    auto r = net::ParseCtlResponse(msg->payload);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    replies[r->role] = *r;
  }
  for (const auto& [role, r] : replies) {
    EXPECT_EQ(r.verb, net::CtlVerb::kPurge) << role;
    EXPECT_EQ(r.code, StatusCode::kFailedPrecondition) << role;
    EXPECT_EQ(r.epoch, 2u) << role;
    EXPECT_NE(r.detail.find("stale session epoch 1"), std::string::npos)
        << role << ": " << r.detail;
  }
  // Fenced exactly once each, with the adopted epoch intact.
  for (auto& s : services_) {
    EXPECT_EQ(s->fenced_requests(), 1);
    EXPECT_EQ(s->epoch(), 2u);
  }
  zombie.Stop();
}

// ------------------------------------------------------- comparator fleet

/// Two complete shard meshes (six PartyService daemons on threads) driven by
/// one fleet coordinator — the sharded deployment of docs/CLUSTER.md,
/// hermetically in one process.
class FleetTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 2;

  void StartFleet(int receive_timeout_ms) {
    for (int shard = 0; shard < kShards; ++shard) {
      Fd holds[3];
      uint16_t ports[3];
      for (int i = 0; i < 3; ++i) {
        auto listener = net::TcpListen(0);
        ASSERT_TRUE(listener.ok());
        auto port = net::LocalPort(*listener);
        ASSERT_TRUE(port.ok());
        ports[i] = *port;
        holds[i] = std::move(*listener);
      }
      for (int i = 0; i < 3; ++i) holds[i].Close();
      MeshEndpoints mesh;
      mesh.alice = {"alice", "127.0.0.1", ports[0]};
      mesh.bob = {"bob", "127.0.0.1", ports[1]};
      mesh.qp = {"qp", "127.0.0.1", ports[2]};
      shard_endpoints_.push_back(mesh);

      for (const char* role : {"alice", "bob", "qp"}) {
        PartyServiceOptions opts;
        opts.role = role;
        opts.endpoints = mesh;
        opts.connect_timeout_ms = 10000;
        opts.receive_timeout_ms = receive_timeout_ms;
        services_.push_back(std::make_unique<PartyService>(opts));
      }
    }
    for (size_t i = 0; i < services_.size(); ++i) {
      threads_.emplace_back([this, i, s = services_[i].get()] {
        Status started = s->Start();
        ASSERT_TRUE(started.ok()) << started.ToString();
        Status served = s->Serve();
        // A replica the test kills on purpose exits with the transport
        // error; so may its shard siblings, cut off mid-protocol.
        EXPECT_TRUE(served.ok() || may_crash_[i].load()) << served.ToString();
      });
    }
  }

  std::unique_ptr<RemoteSmcOracle> MakeFleetOracle(int receive_timeout_ms,
                                                   int rpc_batch,
                                                   int rpc_window) {
    RemoteOracleOptions opts;
    opts.config.key_bits = 256;  // small key: fast tests
    opts.config.test_seed = 4242;
    opts.config.max_retries = 3;
    opts.rule = MixedRule();
    opts.shard_endpoints = shard_endpoints_;
    opts.connect_timeout_ms = 10000;
    opts.receive_timeout_ms = receive_timeout_ms;
    opts.rpc_batch_pairs = rpc_batch;
    opts.rpc_window = rpc_window;
    opts.hb_interval_ms = 100;  // fast death detection in tests
    return std::make_unique<RemoteSmcOracle>(opts);
  }

  /// Marks every replica of `shard` as allowed to exit with a transport
  /// error (killing one cuts its two siblings off mid-protocol).
  void AllowShardCrash(int shard) {
    for (int i = 0; i < 3; ++i) may_crash_[3 * shard + i] = true;
  }

  void TearDown() override {
    for (auto& service : services_) {
      if (service != nullptr) service->RequestStop();
    }
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    services_.clear();
  }

  std::vector<MeshEndpoints> shard_endpoints_;
  std::vector<std::unique_ptr<PartyService>> services_;
  std::vector<std::thread> threads_;
  std::array<std::atomic<bool>, 3 * kShards> may_crash_{};
};

// The fleet is an implementation detail of throughput: at a pinned
// config.test_seed, a 2-shard run produces exactly the labels the
// single-shard mesh and the in-process comparator produce, pair for pair.
TEST_F(FleetTest, TwoShardLabelsMatchInProcessProtocol) {
  StartFleet(/*receive_timeout_ms=*/2000);
  auto oracle = MakeFleetOracle(2000, /*rpc_batch=*/2, /*rpc_window=*/2);
  ASSERT_TRUE(oracle->Init().ok());
  ASSERT_EQ(oracle->num_shards(), 2);

  smc::SmcConfig cfg;
  cfg.key_bits = 256;
  cfg.test_seed = 4242;
  smc::SecureRecordComparator reference(cfg, MixedRule());
  ASSERT_TRUE(reference.Init().ok());

  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto expected = reference.Compare(pairs[i].first, pairs[i].second);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ((*labels)[i], *expected ? kPairMatch : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_EQ(oracle->pairs_quarantined(), 0);
  EXPECT_EQ(oracle->rebalanced_pairs(), 0);

  // With batch 2 over six pairs, least-loaded scheduling must actually use
  // both shards — the parity above is not vacuous.
  auto mesh = oracle->CollectStats();
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_GT(mesh->per_party.count("bob#0"), 0u);
  EXPECT_GT(mesh->per_party.count("bob#1"), 0u);
  EXPECT_GT(mesh->per_party.at("bob#0").costs.invocations, 0);
  EXPECT_GT(mesh->per_party.at("bob#1").costs.invocations, 0);

  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

// A replica that dies mid-drain retires its whole shard: the in-flight
// batch is drained off it and re-dispatched on the surviving shard WITHOUT
// burning retry budget, membership records the death, and every label is
// still the exact protocol outcome — no quarantine while a usable shard
// remains.
TEST_F(FleetTest, KilledReplicaRebalancesOntoSurvivingShard) {
  StartFleet(/*receive_timeout_ms=*/300);
  auto oracle = MakeFleetOracle(300, /*rpc_batch=*/2, /*rpc_window=*/2);
  ASSERT_TRUE(oracle->Init().ok());
  AllowShardCrash(1);
  ASSERT_TRUE(oracle->InjectFailures("bob#1", 1, /*crash=*/true).ok());

  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  ASSERT_EQ(labels->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*labels)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_EQ(oracle->pairs_quarantined(), 0);
  EXPECT_GT(oracle->rebalanced_pairs(), 0);
  EXPECT_EQ(oracle->membership().state("bob#1"), net::ReplicaState::kDead);

  // Shutdown is best-effort with a dead shard; it must not hang.
  (void)oracle->Shutdown(/*stop_daemons=*/true);
}

// The full crash-recovery arc: a shard dies mid-run, its replicas restart
// on their old addresses with empty state, the rejoin handshake re-admits
// them with a strictly-higher incarnation through the membership table's
// only dead -> alive edge, the coordinator replays the setup handshake, and
// the recovered shard receives scheduled work again — with every label
// still the exact protocol outcome and nothing quarantined.
TEST_F(FleetTest, RestartedShardRejoinsAndReceivesWork) {
  StartFleet(/*receive_timeout_ms=*/300);
  auto oracle = MakeFleetOracle(300, /*rpc_batch=*/2, /*rpc_window=*/2);
  ASSERT_TRUE(oracle->Init().ok());

  // Kill every replica of shard 1 (stop the loops, then destroy the buses:
  // the coordinator sees the links drop, like a SIGKILLed process).
  for (int r = 0; r < 3; ++r) {
    const size_t i = 3 + r;
    services_[i]->RequestStop();
    threads_[i].join();
    services_[i].reset();
  }
  const uint64_t inc_before = oracle->membership().incarnation("bob#1");

  // The next batch runs entirely on the survivor; shard 1 is declared dead.
  const auto pairs = SixPairs();
  const auto batch = PairBatch(pairs);
  auto labels = oracle->CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*labels)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_EQ(oracle->pairs_quarantined(), 0);
  ASSERT_EQ(oracle->membership().state("bob#1"), net::ReplicaState::kDead);

  // Restart the three replicas on their old addresses, state wiped.
  const char* roles[3] = {"alice", "bob", "qp"};
  for (int r = 0; r < 3; ++r) {
    const size_t i = 3 + r;
    PartyServiceOptions popts;
    popts.role = roles[r];
    popts.endpoints = shard_endpoints_[1];
    popts.connect_timeout_ms = 10000;
    popts.receive_timeout_ms = 300;
    services_[i] = std::make_unique<PartyService>(popts);
    threads_.emplace_back([this, i, s = services_[i].get()] {
      Status started = s->Start();
      ASSERT_TRUE(started.ok()) << started.ToString();
      Status served = s->Serve();
      EXPECT_TRUE(served.ok() || may_crash_[i].load()) << served.ToString();
    });
  }

  // Rejoin offers ride the heartbeat cadence inside batch rounds, so keep
  // feeding single-pair batches until the whole shard is alive again.
  auto shard1_alive = [&] {
    return oracle->membership().alive("alice#1") &&
           oracle->membership().alive("bob#1") &&
           oracle->membership().alive("qp#1");
  };
  Record a = Rec(3, 50), b = Rec(3, 55);
  std::vector<RowPairRequest> poll(1);
  poll[0].a_id = 7;
  poll[0].b_id = 107;
  poll[0].a = &a;
  poll[0].b = &b;
  for (int round = 0; round < 200 && !shard1_alive(); ++round) {
    auto one = oracle->CompareBatch(poll);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    EXPECT_EQ((*one)[0], kPairMatch);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  ASSERT_TRUE(shard1_alive()) << "shard 1 never rejoined";

  // The resurrection went through the gated handshake: strictly higher
  // incarnation, and the transition log shows the dead -> alive edge.
  EXPECT_GE(oracle->membership().rejoins(), 3);
  EXPECT_GT(oracle->membership().incarnation("bob#1"), inc_before);
  bool resurrection_logged = false;
  for (const auto& t : oracle->membership().transitions()) {
    if (t.replica == "bob#1" && t.from == net::ReplicaState::kDead &&
        t.to == net::ReplicaState::kAlive) {
      resurrection_logged = true;
    }
  }
  EXPECT_TRUE(resurrection_logged);

  // And the recovered shard is really back in rotation: a fresh run spreads
  // over both shards, the restarted daemons (counters wiped) do real work,
  // and the labels are still bit-exact.
  auto again = oracle->CompareBatch(batch);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*again)[i],
              RecordsMatch(pairs[i].first, pairs[i].second, MixedRule())
                  ? kPairMatch
                  : kPairNonMatch)
        << "pair " << i;
  }
  EXPECT_EQ(oracle->pairs_quarantined(), 0);
  auto mesh = oracle->CollectStats();
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  ASSERT_GT(mesh->per_party.count("bob#1"), 0u);
  EXPECT_GT(mesh->per_party.at("bob#1").costs.invocations, 0);

  EXPECT_TRUE(oracle->Shutdown(/*stop_daemons=*/true).ok());
}

}  // namespace
}  // namespace hprl
