// Coverage for the small supporting pieces: logging, timers, name/ToString
// helpers, the raw CSV reader — behaviors that larger suites exercise only
// incidentally.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "data/csv.h"
#include "linkage/slack.h"
#include "smc/costs.h"

namespace hprl {
namespace {

TEST(LoggingTest, LevelGateIsSettable) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Suppressed and emitted messages must both be safe to construct.
  HPRL_DEBUG() << "suppressed " << 42;
  HPRL_ERROR() << "emitted " << 43;
  SetLogLevel(before);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  HPRL_CHECK(1 + 1 == 2);  // must not abort
  SUCCEED();
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double first = t.ElapsedSeconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  EXPECT_NEAR(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3,
              t.ElapsedMillis() * 0.5);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), first);
}

TEST(ToStringTest, ValueRenderings) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Numeric(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Category(7).ToString(), "#7");
  EXPECT_EQ(Value::Text("hi").ToString(), "hi");
}

TEST(ToStringTest, PairLabelNames) {
  EXPECT_EQ(PairLabelName(PairLabel::kMatch), "M");
  EXPECT_EQ(PairLabelName(PairLabel::kMismatch), "N");
  EXPECT_EQ(PairLabelName(PairLabel::kUnknown), "U");
}

TEST(ToStringTest, AttrTypeNames) {
  EXPECT_EQ(AttrTypeName(AttrType::kNumeric), "numeric");
  EXPECT_EQ(AttrTypeName(AttrType::kCategorical), "categorical");
  EXPECT_EQ(AttrTypeName(AttrType::kText), "text");
}

TEST(ToStringTest, SmcCostsSummary) {
  smc::SmcCosts costs;
  costs.invocations = 3;
  costs.encryptions = 9;
  std::string s = costs.ToString();
  EXPECT_NE(s.find("invocations=3"), std::string::npos);
  EXPECT_NE(s.find("enc=9"), std::string::npos);
  smc::SmcCosts other;
  other.invocations = 2;
  costs += other;
  EXPECT_EQ(costs.invocations, 5);
  costs.Clear();
  EXPECT_EQ(costs.invocations, 0);
}

TEST(RawCsvTest, ReadsHeaderAndRows) {
  auto path =
      (std::filesystem::temp_directory_path() / "hprl_raw.csv").string();
  {
    std::ofstream out(path);
    out << "a,b,c\n1,\"x,y\",3\n4,5,6\n";
  }
  auto raw = ReadCsvRaw(path);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(raw->rows.size(), 2u);
  EXPECT_EQ(raw->rows[0][1], "x,y");
  EXPECT_EQ(raw->FindColumn("c"), 2);
  EXPECT_EQ(raw->FindColumn("zzz"), -1);
  std::remove(path.c_str());
}

TEST(RawCsvTest, RejectsRaggedRows) {
  auto path =
      (std::filesystem::temp_directory_path() / "hprl_ragged.csv").string();
  {
    std::ofstream out(path);
    out << "a,b\n1,2,3\n";
  }
  EXPECT_FALSE(ReadCsvRaw(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvRaw("/nonexistent/file.csv").ok());
}

}  // namespace
}  // namespace hprl
