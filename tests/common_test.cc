#include <gtest/gtest.h>

#include <set>

#include "common/flags.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace hprl {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kIOError}) {
    EXPECT_NE(StatusCodeToString(c), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fail = []() -> Status { return Status::NotFound("x"); };
  auto wrap = [&]() -> Status {
    HPRL_RETURN_IF_ERROR(fail());
    return Status::OK();
  };
  EXPECT_EQ(wrap().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 16; ++i) diff += a.Next() != b.Next();
  EXPECT_GT(diff, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(11);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextDiscrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  // Roughly 1:3.
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.7);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimRemovesWhitespace) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "hel"));
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt(" -7 "), -7);
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("0.5.6").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

// ---------------------------------------------------------------- math

TEST(MathUtilTest, EntropyUniformIsLog2) {
  EXPECT_NEAR(ShannonEntropy({1, 1, 1, 1}), 2.0, 1e-12);
  EXPECT_NEAR(ShannonEntropy({5, 5}), 1.0, 1e-12);
}

TEST(MathUtilTest, EntropyDegenerateIsZero) {
  EXPECT_EQ(ShannonEntropy({}), 0.0);
  EXPECT_EQ(ShannonEntropy({10}), 0.0);
  EXPECT_EQ(ShannonEntropy({10, 0, 0}), 0.0);
}

TEST(MathUtilTest, EntropyIgnoresZeros) {
  EXPECT_NEAR(ShannonEntropy({3, 0, 3}), 1.0, 1e-12);
}

// ---------------------------------------------------------------- flags

TEST(FlagsTest, ParsesAllKinds) {
  FlagSet flags;
  int64_t* k = flags.AddInt("k", 32, "anonymity");
  double* theta = flags.AddDouble("theta", 0.05, "threshold");
  bool* verbose = flags.AddBool("verbose", false, "verbosity");
  std::string* name = flags.AddString("name", "x", "label");

  const char* argv[] = {"prog", "--k=64",       "--theta", "0.1",
                        "--verbose", "--name=hello"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(*k, 64);
  EXPECT_DOUBLE_EQ(*theta, 0.1);
  EXPECT_TRUE(*verbose);
  EXPECT_EQ(*name, "hello");
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsBadValue) {
  FlagSet flags;
  flags.AddInt("k", 1, "");
  const char* argv[] = {"prog", "--k=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagSet flags;
  int64_t* k = flags.AddInt("k", 5, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(*k, 5);
}

}  // namespace
}  // namespace hprl
