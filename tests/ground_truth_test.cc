#include <gtest/gtest.h>

#include "adult/adult.h"
#include "common/random.h"
#include "data/partition.h"
#include "linkage/ground_truth.h"

namespace hprl {
namespace {

/// Small random tables over a mixed schema for cross-validation against the
/// naive counter.
struct Fixture {
  SchemaPtr schema;
  MatchRule rule;

  Fixture() {
    auto dom = std::make_shared<CategoryDomain>(
        std::vector<std::string>{"a", "b", "c", "d"});
    auto s = std::make_shared<Schema>();
    s->AddCategorical("cat", dom);
    s->AddNumeric("num");
    s->AddNumeric("num2");
    schema = s;

    AttrRule r0;
    r0.attr_index = 0;
    r0.type = AttrType::kCategorical;
    r0.theta = 0.5;
    AttrRule r1;
    r1.attr_index = 1;
    r1.type = AttrType::kNumeric;
    r1.theta = 0.1;
    r1.norm = 100;
    AttrRule r2;
    r2.attr_index = 2;
    r2.type = AttrType::kNumeric;
    r2.theta = 0.2;
    r2.norm = 50;
    rule.attrs = {r0, r1, r2};
  }

  Table RandomTable(int64_t n, Rng& rng) const {
    Table t(schema);
    for (int64_t i = 0; i < n; ++i) {
      t.AppendUnchecked({Value::Category(static_cast<int32_t>(
                             rng.NextBounded(4))),
                         Value::Numeric(rng.NextDouble(0, 100)),
                         Value::Numeric(rng.NextDouble(0, 50))});
    }
    return t;
  }
};

TEST(GroundTruthTest, AgreesWithNaiveOnRandomData) {
  Fixture f;
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Table r = f.RandomTable(60, rng);
    Table s = f.RandomTable(80, rng);
    auto fast = CountMatchingPairs(r, s, f.rule);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, CountMatchingPairsNaive(r, s, f.rule)) << trial;
  }
}

TEST(GroundTruthTest, VacuousCategoricalThreshold) {
  Fixture f;
  f.rule.attrs[0].theta = 1.0;  // Hamming never exceeds 1: no key constraint
  Rng rng(22);
  Table r = f.RandomTable(40, rng);
  Table s = f.RandomTable(40, rng);
  auto fast = CountMatchingPairs(r, s, f.rule);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, CountMatchingPairsNaive(r, s, f.rule));
}

TEST(GroundTruthTest, SelfJoinCountsDiagonal) {
  Fixture f;
  Rng rng(23);
  Table r = f.RandomTable(50, rng);
  auto fast = CountMatchingPairs(r, r, f.rule);
  ASSERT_TRUE(fast.ok());
  EXPECT_GE(*fast, 50);  // every record matches itself
}

TEST(GroundTruthTest, EmptyTables) {
  Fixture f;
  Table r(f.schema), s(f.schema);
  auto n = CountMatchingPairs(r, s, f.rule);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
}

TEST(GroundTruthTest, SharedD3BlockGuaranteesMatches) {
  // The paper's construction: D1 ∩ D2 ⊇ d3, so true matches >= |d3|.
  auto h = adult::BuildAdultHierarchies();
  Table source = adult::GenerateAdult(900, 4, h);
  Rng rng(5);
  auto split = SplitForLinkage(source, rng);
  ASSERT_TRUE(split.ok());

  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) vghs.push_back(h.ByName(n));
  auto rule = MakeUniformRule(source.schema(), adult::AdultQidNames(), vghs,
                              5, 0.05);
  ASSERT_TRUE(rule.ok());

  auto matches = CountMatchingPairs(split->d1, split->d2, *rule);
  ASSERT_TRUE(matches.ok());
  EXPECT_GE(*matches, split->shared_count);
  EXPECT_EQ(*matches, CountMatchingPairsNaive(split->d1, split->d2, *rule));
}

TEST(GroundTruthTest, TextAttributesAreSupported) {
  auto s = std::make_shared<Schema>();
  s->AddText("name");
  SchemaPtr schema = s;
  MatchRule rule;
  AttrRule tr;
  tr.attr_index = 0;
  tr.type = AttrType::kText;
  tr.theta = 1;  // at most one edit
  rule.attrs = {tr};

  Table r(schema), t(schema);
  r.AppendUnchecked({Value::Text("smith")});
  r.AppendUnchecked({Value::Text("jones")});
  t.AppendUnchecked({Value::Text("smyth")});
  t.AppendUnchecked({Value::Text("jonas")});
  t.AppendUnchecked({Value::Text("baker")});
  auto n = CountMatchingPairs(r, t, rule);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);  // smith~smyth, jones~jonas
}

}  // namespace
}  // namespace hprl
