#include <gtest/gtest.h>

#include <set>

#include "crypto/commutative.h"
#include "smc/psi.h"

namespace hprl {
namespace {

using crypto::BigInt;
using crypto::CommutativeCipher;
using crypto::SecureRandom;

class CommutativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SecureRandom rng(1001);
    auto p = CommutativeCipher::GenerateSafePrime(192, rng);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    prime_ = std::move(p).value();
  }
  BigInt prime_;
};

TEST_F(CommutativeTest, SafePrimeStructure) {
  EXPECT_TRUE(prime_.IsProbablePrime());
  BigInt q = (prime_ - BigInt(1)) / BigInt(2);
  EXPECT_TRUE(q.IsProbablePrime());
  EXPECT_EQ(prime_.BitLength(), 192u);
}

TEST_F(CommutativeTest, EncryptDecryptRoundTrip) {
  SecureRandom rng(7);
  auto cipher = CommutativeCipher::Create(prime_, rng);
  ASSERT_TRUE(cipher.ok());
  for (const char* msg : {"smith|1970", "jones|1985", ""}) {
    BigInt x = cipher->EncodeToGroup(msg);
    EXPECT_EQ(cipher->Decrypt(cipher->Encrypt(x)), x) << msg;
  }
}

TEST_F(CommutativeTest, EncryptionCommutes) {
  SecureRandom rng(8);
  auto a = CommutativeCipher::Create(prime_, rng);
  auto b = CommutativeCipher::Create(prime_, rng);
  ASSERT_TRUE(a.ok() && b.ok());
  for (const char* msg : {"alpha", "beta", "gamma"}) {
    BigInt x = a->EncodeToGroup(msg);
    EXPECT_EQ(a->Encrypt(b->Encrypt(x)), b->Encrypt(a->Encrypt(x))) << msg;
  }
}

TEST_F(CommutativeTest, EncodingIsDeterministicAndDiscriminating) {
  SecureRandom rng(9);
  auto cipher = CommutativeCipher::Create(prime_, rng);
  ASSERT_TRUE(cipher.ok());
  EXPECT_EQ(cipher->EncodeToGroup("x"), cipher->EncodeToGroup("x"));
  std::set<std::string> images;
  for (const char* msg : {"a", "b", "ab", "ba", "aa", "", "A"}) {
    images.insert(cipher->EncodeToGroup(msg).ToString());
  }
  EXPECT_EQ(images.size(), 7u);
}

TEST_F(CommutativeTest, RejectsNonSafePrime) {
  SecureRandom rng(10);
  EXPECT_FALSE(CommutativeCipher::Create(BigInt(104729), rng).ok());  // 104729 prime but 52364 = 2^2*...
  EXPECT_FALSE(CommutativeCipher::Create(BigInt(100), rng).ok());
}

// ---------------------------------------------------------------- PSI

SchemaPtr PsiSchema() {
  auto schema = std::make_shared<Schema>();
  schema->AddText("name");
  schema->AddNumeric("year");
  return schema;
}

TEST(PsiTest, LinksExactlyTheEqualKeys) {
  SchemaPtr schema = PsiSchema();
  Table a(schema), b(schema);
  a.AppendUnchecked({Value::Text("smith"), Value::Numeric(1970)});
  a.AppendUnchecked({Value::Text("jones"), Value::Numeric(1985)});
  a.AppendUnchecked({Value::Text("garcia"), Value::Numeric(1990)});
  b.AppendUnchecked({Value::Text("garcia"), Value::Numeric(1990)});
  b.AppendUnchecked({Value::Text("smith"), Value::Numeric(1971)});  // year off
  b.AppendUnchecked({Value::Text("smith"), Value::Numeric(1970)});

  smc::PsiConfig cfg;
  cfg.prime_bits = 192;
  cfg.test_seed = 42;
  auto result = smc::RunPsiLinkage(a, b, {0, 1}, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::set<std::pair<int64_t, int64_t>> links(result->links.begin(),
                                              result->links.end());
  EXPECT_EQ(links,
            (std::set<std::pair<int64_t, int64_t>>{{0, 2}, {2, 0}}));
  // 2 encryptions per record: once by the owner, once by the peer.
  EXPECT_EQ(result->exponentiations, 2 * (a.num_rows() + b.num_rows()));
  EXPECT_GT(result->bytes, 0);
}

TEST(PsiTest, HandlesDuplicatesAsMultiset) {
  SchemaPtr schema = PsiSchema();
  Table a(schema), b(schema);
  for (int i = 0; i < 2; ++i) {
    a.AppendUnchecked({Value::Text("dup"), Value::Numeric(1)});
  }
  b.AppendUnchecked({Value::Text("dup"), Value::Numeric(1)});
  smc::PsiConfig cfg;
  cfg.prime_bits = 192;
  cfg.test_seed = 5;
  auto result = smc::RunPsiLinkage(a, b, {0, 1}, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->links.size(), 2u);  // both A copies link to the B row
}

TEST(PsiTest, EmptyInputsAndBadConfig) {
  SchemaPtr schema = PsiSchema();
  Table a(schema), b(schema);
  smc::PsiConfig cfg;
  cfg.prime_bits = 192;
  cfg.test_seed = 6;
  auto empty = smc::RunPsiLinkage(a, b, {0}, cfg);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->links.empty());
  EXPECT_FALSE(smc::RunPsiLinkage(a, b, {}, cfg).ok());
}

TEST(PsiTest, AgreesWithPlaintextJoinOnRandomData) {
  SchemaPtr schema = PsiSchema();
  Rng rng(77);
  Table a(schema), b(schema);
  const char* names[] = {"n0", "n1", "n2", "n3", "n4"};
  for (int i = 0; i < 40; ++i) {
    a.AppendUnchecked({Value::Text(names[rng.NextBounded(5)]),
                       Value::Numeric(static_cast<double>(rng.NextBounded(3)))});
    b.AppendUnchecked({Value::Text(names[rng.NextBounded(5)]),
                       Value::Numeric(static_cast<double>(rng.NextBounded(3)))});
  }
  smc::PsiConfig cfg;
  cfg.prime_bits = 192;
  cfg.test_seed = 7;
  auto result = smc::RunPsiLinkage(a, b, {0, 1}, cfg);
  ASSERT_TRUE(result.ok());

  std::set<std::pair<int64_t, int64_t>> expected;
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    for (int64_t j = 0; j < b.num_rows(); ++j) {
      if (a.at(i, 0).text() == b.at(j, 0).text() &&
          a.at(i, 1).num() == b.at(j, 1).num()) {
        expected.emplace(i, j);
      }
    }
  }
  std::set<std::pair<int64_t, int64_t>> got(result->links.begin(),
                                            result->links.end());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace hprl
