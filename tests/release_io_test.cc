#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "anon/metrics.h"
#include "anon/release_io.h"
#include "core/blocking.h"
#include "core/experiment.h"
#include "data/names.h"

namespace hprl {
namespace {

AnonymizedTable MakeSample() {
  const ExperimentData* data = [] {
    static auto d = PrepareAdultData(600, 3);
    EXPECT_TRUE(d.ok());
    return &d.value();
  }();
  auto cfg = MakeAdultAnonConfig(*data, 5, 8);
  EXPECT_TRUE(cfg.ok());
  auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data->split.d1);
  EXPECT_TRUE(anon.ok());
  return std::move(anon).value();
}

TEST(ReleaseIoTest, LosslessRoundTripWithRows) {
  AnonymizedTable anon = MakeSample();
  auto back = ParseRelease(FormatRelease(anon, /*include_rows=*/true));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows, anon.num_rows);
  EXPECT_EQ(back->suppressed, anon.suppressed);
  EXPECT_EQ(back->qid_attrs, anon.qid_attrs);
  ASSERT_EQ(back->groups.size(), anon.groups.size());
  for (size_t i = 0; i < anon.groups.size(); ++i) {
    EXPECT_EQ(back->groups[i].rows, anon.groups[i].rows);
    EXPECT_EQ(back->groups[i].seq, anon.groups[i].seq) << i;
    EXPECT_EQ(back->groups[i].is_suppression_group,
              anon.groups[i].is_suppression_group);
  }
}

TEST(ReleaseIoTest, PublishedFormHidesRowsButKeepsSizes) {
  AnonymizedTable anon = MakeSample();
  std::string published = FormatRelease(anon, /*include_rows=*/false);
  // No row ids anywhere in the published text beyond sizes: parse and check.
  auto back = ParseRelease(published);
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < anon.groups.size(); ++i) {
    EXPECT_TRUE(back->groups[i].rows.empty());
    EXPECT_EQ(back->groups[i].size(), anon.groups[i].size());
  }
  EXPECT_EQ(DistinctSequences(*back), DistinctSequences(anon));
  EXPECT_EQ(back->MinGroupSize(), anon.MinGroupSize());
}

TEST(ReleaseIoTest, BlockingWorksOnPublishedReleases) {
  // The querying party can run the blocking step from published releases
  // alone (sequence + size information), matching the paper's data flow.
  const ExperimentData* data = [] {
    static auto d = PrepareAdultData(600, 4);
    EXPECT_TRUE(d.ok());
    return &d.value();
  }();
  auto cfg = MakeAdultAnonConfig(*data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  auto anonymizer = MakeMaxEntropyAnonymizer(*cfg);
  auto anon_r = anonymizer->Anonymize(data->split.d1);
  auto anon_s = anonymizer->Anonymize(data->split.d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());

  auto pub_r = ParseRelease(FormatRelease(*anon_r, false));
  auto pub_s = ParseRelease(FormatRelease(*anon_s, false));
  ASSERT_TRUE(pub_r.ok() && pub_s.ok());

  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(data->hierarchies.ByName(n));
  }
  auto rule = MakeUniformRule(data->schema, adult::AdultQidNames(), vghs, 5,
                              0.05);
  ASSERT_TRUE(rule.ok());

  auto full = RunBlocking(*anon_r, *anon_s, *rule);
  auto published = RunBlocking(*pub_r, *pub_s, *rule);
  ASSERT_TRUE(full.ok() && published.ok());
  EXPECT_EQ(published->matched_pairs, full->matched_pairs);
  EXPECT_EQ(published->mismatched_pairs, full->mismatched_pairs);
  EXPECT_EQ(published->unknown_pairs, full->unknown_pairs);
}

TEST(ReleaseIoTest, TextSequencesSurviveHexEncoding) {
  Table reg = GenerateNameRegistry(200, 9);
  auto age_vgh = MakeEquiWidthVgh(16, 8, {3, 2, 2});
  ASSERT_TRUE(age_vgh.ok());
  AnonymizerConfig cfg;
  cfg.k = 4;
  cfg.qid_attrs = {0, 1, 2};
  cfg.hierarchies = {nullptr, nullptr,
                     std::make_shared<const Vgh>(std::move(age_vgh).value())};
  auto anon = MakeMaxEntropyAnonymizer(cfg)->Anonymize(reg);
  ASSERT_TRUE(anon.ok());
  auto back = ParseRelease(FormatRelease(*anon, true));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->groups.size(), anon->groups.size());
  for (size_t i = 0; i < anon->groups.size(); ++i) {
    EXPECT_EQ(back->groups[i].seq, anon->groups[i].seq) << i;
  }
}

TEST(ReleaseIoTest, FileRoundTrip) {
  AnonymizedTable anon = MakeSample();
  std::string path =
      (std::filesystem::temp_directory_path() / "hprl_release_test.txt")
          .string();
  ASSERT_TRUE(WriteRelease(anon, true, path).ok());
  auto back = LoadRelease(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->groups.size(), anon.groups.size());
  std::remove(path.c_str());
}

TEST(ReleaseIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRelease("").ok());
  EXPECT_FALSE(ParseRelease("wrong-magic 1\n").ok());
  EXPECT_FALSE(ParseRelease("hprl-release 99\n").ok());
  EXPECT_FALSE(
      ParseRelease("hprl-release 1\nrows 5 suppressed 0\nqids 0\nbogus\n")
          .ok());
  // Truncated group (missing value lines).
  EXPECT_FALSE(
      ParseRelease(
          "hprl-release 1\nrows 5 suppressed 0\nqids 0 1\ngroup 5 0\ncat 0 1\n")
          .ok());
  // Size/rows mismatch.
  EXPECT_FALSE(
      ParseRelease(
          "hprl-release 1\nrows 2 suppressed 0\nqids 0\ngroup 2 0 7\ncat 0 1\n")
          .ok());
}

}  // namespace
}  // namespace hprl
