// Tests for the BigInt scratch arena (src/crypto/arena.h) and the in-place
// Paillier operations it feeds (src/crypto/paillier.h *Into variants): slot
// reuse and reference stability across growth, gauge publication, exact
// parity of the in-place ops against their value-returning references, and
// bit-identical packed-SMC labels with the arena on vs off.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/arena.h"
#include "crypto/bigint.h"
#include "crypto/paillier.h"
#include "obs/metrics.h"
#include "smc/batch_engine.h"
#include "smc/protocol.h"

namespace hprl {
namespace {

using crypto::BigInt;
using crypto::BigIntArena;

// ------------------------------------------------------------ BigIntArena

TEST(BigIntArenaTest, HandsOutDistinctSlotsAndReusesAfterReset) {
  BigIntArena arena(/*value_bits=*/256, /*block_slots=*/4);
  EXPECT_EQ(arena.capacity(), 0u);  // lazy: nothing until first Next()

  BigInt* a = &arena.Next();
  BigInt* b = &arena.Next();
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.in_use(), 2u);
  EXPECT_EQ(arena.capacity(), 4u);

  arena.Reset();
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.capacity(), 4u);  // storage retained

  // The cursor rewound: the same slots come back in the same order.
  EXPECT_EQ(&arena.Next(), a);
  EXPECT_EQ(&arena.Next(), b);
  EXPECT_EQ(arena.resets(), 1);
}

// Growth appends blocks without moving existing slots (deque-backed), so a
// reference taken before growth stays valid — the property the packed
// exchange relies on when a group overflows the first block.
TEST(BigIntArenaTest, GrowthPreservesEarlierReferences) {
  BigIntArena arena(/*value_bits=*/128, /*block_slots=*/2);
  BigInt& first = arena.Next();
  first = BigInt(123456789);
  for (int i = 0; i < 10; ++i) arena.Next();  // forces several growths
  EXPECT_GE(arena.capacity(), 11u);
  EXPECT_GT(arena.blocks(), 1);
  EXPECT_EQ(first, BigInt(123456789));  // still alive, still intact
}

TEST(BigIntArenaTest, SlotsAreWideEnoughForInPlaceOps) {
  // Slots are reserved at value_bits; a value of exactly that width must fit
  // without realloc (reserved_bytes does not move when one is stored).
  BigIntArena arena(/*value_bits=*/512, /*block_slots=*/2);
  BigInt& slot = arena.Next();
  const int64_t reserved = arena.reserved_bytes();
  slot = BigInt(1);
  for (int i = 0; i < 511; ++i) slot = slot + slot;  // 2^511: full width
  EXPECT_EQ(slot.BitLength(), 512u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(BigIntArenaTest, PublishesGauges) {
  obs::MetricsRegistry registry;
  BigIntArena arena(/*value_bits=*/64, /*block_slots=*/4);
  arena.AttachMetrics(&registry);
  for (int i = 0; i < 5; ++i) arena.Next();  // two blocks
  arena.Reset();
  EXPECT_EQ(registry.gauge("crypto.arena.blocks")->value(), 2);
  EXPECT_GT(registry.gauge("crypto.arena.bytes")->value(), 0);
  EXPECT_EQ(registry.gauge("crypto.arena.resets")->value(), 1);
}

// -------------------------------------------------- in-place Paillier ops

class InPlaceOpsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::SecureRandom rng(1234);
    auto kp = crypto::GeneratePaillierKeyPair(256, rng);
    ASSERT_TRUE(kp.ok());
    kp_ = new crypto::PaillierKeyPair(std::move(kp).value());
  }
  static crypto::PaillierKeyPair* kp_;
};

crypto::PaillierKeyPair* InPlaceOpsTest::kp_ = nullptr;

// EncryptInto must consume the same randomness and produce the same
// ciphertext as Encrypt: two rngs with the same seed, one per path.
TEST_F(InPlaceOpsTest, EncryptIntoMatchesEncrypt) {
  const auto& pub = kp_->pub;
  crypto::SecureRandom value_rng(42), into_rng(42);
  BigInt scratch, out;
  for (int64_t m : {0, 1, 17, 99999}) {
    auto value = pub.Encrypt(BigInt(m), value_rng);
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(pub.EncryptInto(BigInt(m), into_rng, &scratch, &out).ok());
    EXPECT_EQ(out, *value) << "m=" << m;
  }
}

TEST_F(InPlaceOpsTest, EncryptSignedIntoMatchesEncryptSigned) {
  const auto& pub = kp_->pub;
  crypto::SecureRandom value_rng(7), into_rng(7);
  BigInt scratch, out;
  for (int64_t m : {-12345, -1, 0, 1, 54321}) {
    auto value = pub.EncryptSigned(BigInt(m), value_rng);
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(
        pub.EncryptSignedInto(BigInt(m), into_rng, &scratch, &out).ok());
    EXPECT_EQ(out, *value) << "m=" << m;
    // Decrypting closes the loop: in-place ciphertexts are real ciphertexts.
    auto back = kp_->priv.DecryptSigned(out);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, BigInt(m)) << "m=" << m;
  }
}

TEST_F(InPlaceOpsTest, AddIntoAndScalarMulIntoMatchValueOps) {
  const auto& pub = kp_->pub;
  crypto::SecureRandom rng(55);
  auto c1 = pub.Encrypt(BigInt(1111), rng);
  auto c2 = pub.Encrypt(BigInt(2222), rng);
  ASSERT_TRUE(c1.ok() && c2.ok());

  BigInt acc = *c1;
  pub.AddInto(&acc, *c2);
  EXPECT_EQ(acc, pub.Add(*c1, *c2));

  BigInt scratch, out;
  for (int64_t k : {-3, 0, 1, 7}) {
    pub.ScalarMulInto(*c1, BigInt(k), &scratch, &out);
    EXPECT_EQ(out, pub.ScalarMul(*c1, BigInt(k))) << "k=" << k;
  }

  // Aliasing contract: inputs may alias *out.
  BigInt aliased = *c1;
  pub.ScalarMulInto(aliased, BigInt(7), &scratch, &aliased);
  EXPECT_EQ(aliased, pub.ScalarMul(*c1, BigInt(7)));
}

// --------------------------------------------- packed exchange label parity

MatchRule TwoNumericRule() {
  MatchRule rule;
  for (int i = 0; i < 2; ++i) {
    AttrRule a;
    a.attr_index = i;
    a.type = AttrType::kNumeric;
    a.theta = 0.05;
    a.norm = 96;
    rule.attrs.push_back(a);
  }
  return rule;
}

// The arena is a pure allocation optimization: with it on or off, the packed
// exchange must produce bit-identical labels on the identical pinned-seed
// run — while the packed path actually executes (cost counters prove it).
TEST(ArenaPackedSmcTest, ArenaOnAndOffLabelsBitIdentical) {
  MatchRule rule = TwoNumericRule();
  std::vector<Record> as, bs;
  std::vector<RowPairRequest> batch;
  for (int i = 0; i < 24; ++i) {
    as.push_back({Value::Numeric(40 + i), Value::Numeric(60 + i)});
    bs.push_back({Value::Numeric(40 + i + (i % 3)), Value::Numeric(60 + i)});
  }
  for (int i = 0; i < 24; ++i) batch.push_back({i, i, &as[i], &bs[i]});

  std::vector<std::vector<uint8_t>> labels_by_mode;
  for (bool use_arena : {false, true}) {
    smc::SmcConfig cfg;
    cfg.key_bits = 512;
    cfg.test_seed = 4242;
    cfg.pack_pairs = 3;  // 512-bit key, 64-bit slots -> 7 slots, 3 pairs
    cfg.pack_slot_bits = 64;
    cfg.use_arena = use_arena;
    smc::BatchSmcEngine engine(cfg, rule, 2);
    ASSERT_TRUE(engine.Init().ok());
    auto labels = engine.CompareBatch(batch);
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
    EXPECT_GT(engine.costs().packed_exchanges, 0)
        << "use_arena=" << use_arena;
    labels_by_mode.push_back(std::move(labels).value());
  }
  EXPECT_EQ(labels_by_mode[0], labels_by_mode[1]);
  EXPECT_GT(labels_by_mode[0].size(), 0u);
}

}  // namespace
}  // namespace hprl
