// Property tests for the comparator-fleet membership machinery
// (src/net/membership.h) and the typed ctl verbs (src/net/frame.h):
//
//  - the replica state machine only ever takes valid edges — in particular
//    a replica is NEVER moved Alive -> Dead without passing Suspect, and
//    Dead is sticky — under arbitrary interleavings of acks, probe misses
//    and link losses;
//  - incarnation numbers are monotone per replica (stale acks are counted,
//    never applied);
//  - the shard scheduler preserves the batch multiset across any
//    Assign/Complete/Drain interleaving: every batch is completed or
//    drained exactly once, and per-shard inflight accounting returns to
//    zero;
//  - every CtlVerb round-trips through its wire tag and inbox, and
//    CtlRequest/CtlResponse encode/decode are inverses.
//
// The random walks are seeded, so a failure reproduces exactly.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <vector>

#include "net/frame.h"
#include "net/membership.h"

namespace hprl::net {
namespace {

bool ValidEdge(ReplicaState from, ReplicaState to) {
  switch (from) {
    case ReplicaState::kUnknown:
      // First ack brings a replica up; a link loss before any ack suspects
      // it (and the machine may then kill it, via the Suspect edge below).
      return to == ReplicaState::kAlive || to == ReplicaState::kSuspect;
    case ReplicaState::kAlive:
      return to == ReplicaState::kSuspect;  // never straight to Dead
    case ReplicaState::kSuspect:
      return to == ReplicaState::kAlive || to == ReplicaState::kDead;
    case ReplicaState::kDead:
      // Sticky against every passive signal; the one legal resurrection is
      // the explicit rejoin handshake (OnRejoin, strictly-higher
      // incarnation).
      return to == ReplicaState::kAlive;
  }
  return false;
}

TEST(MembershipPropertyTest, RandomWalkTakesOnlyValidEdges) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 99991u}) {
    std::mt19937_64 rng(seed);
    MembershipOptions opts;
    opts.suspect_after_misses = 1 + static_cast<int>(rng() % 3);
    opts.dead_after_misses =
        opts.suspect_after_misses + 1 + static_cast<int>(rng() % 3);
    MembershipTable table(opts);
    const std::vector<std::string> replicas = {"alice#0", "bob#0", "qp#0",
                                               "alice#1", "bob#1", "qp#1"};
    for (const auto& r : replicas) table.Register(r);

    std::map<std::string, uint64_t> incarnation;
    std::map<std::string, uint64_t> last_seen;
    for (int step = 0; step < 2000; ++step) {
      const std::string& r = replicas[rng() % replicas.size()];
      switch (rng() % 5) {
        case 0:  // fresh ack (daemon-side incarnation only ever grows)
          incarnation[r] += rng() % 2;
          table.OnAck(r, incarnation[r]);
          break;
        case 1:  // stale ack (must be ignored, never rewind)
          table.OnAck(r, incarnation[r] > 0 ? incarnation[r] - 1 : 0);
          break;
        case 2:
          table.OnProbeMiss(r);
          break;
        case 3:
          table.OnLinkDown(r);
          break;
        case 4: {  // rejoin handshake: half fresh, half a replayed stale one
          const uint64_t inc =
              (rng() % 2) ? incarnation[r] + 1 : incarnation[r];
          const ReplicaState before = table.state(r);
          const bool admitted = table.OnRejoin(r, inc);
          // Admitted iff dead + strictly higher — never from any other
          // state, never at the stored incarnation.
          EXPECT_EQ(admitted, before == ReplicaState::kDead &&
                                  inc > last_seen[r])
              << "seed " << seed << " step " << step;
          if (admitted) incarnation[r] = inc;
          break;
        }
      }
      // The recorded incarnation never rewinds, whatever the ack order.
      EXPECT_GE(table.incarnation(r), last_seen[r])
          << "seed " << seed << " step " << step;
      last_seen[r] = table.incarnation(r);
    }

    // Every recorded transition is one of the legal edges; replaying them
    // per replica reproduces each replica's final state.
    std::map<std::string, ReplicaState> replay;
    for (const auto& r : replicas) replay[r] = ReplicaState::kUnknown;
    for (const MembershipTransition& t : table.transitions()) {
      EXPECT_TRUE(ValidEdge(t.from, t.to))
          << "seed " << seed << ": illegal edge "
          << ReplicaStateName(t.from) << " -> " << ReplicaStateName(t.to);
      EXPECT_EQ(replay[t.replica], t.from)
          << "seed " << seed << ": transition log out of order for "
          << t.replica;
      replay[t.replica] = t.to;
    }
    for (const auto& r : replicas) {
      EXPECT_EQ(replay[r], table.state(r)) << "seed " << seed;
    }
  }
}

TEST(MembershipPropertyTest, DeadIsStickyAndStaleAcksAreCounted) {
  MembershipTable table;
  table.Register("bob#1");
  table.OnAck("bob#1", 3);
  EXPECT_EQ(table.state("bob#1"), ReplicaState::kAlive);
  table.OnLinkDown("bob#1");
  EXPECT_EQ(table.state("bob#1"), ReplicaState::kDead);

  // Acks (even with a higher incarnation) never revive the dead.
  table.OnAck("bob#1", 9);
  EXPECT_EQ(table.state("bob#1"), ReplicaState::kDead);
  EXPECT_EQ(table.incarnation("bob#1"), 3u);
  EXPECT_EQ(table.stale_acks(), 1);

  // The link-down above must have recorded BOTH edges.
  ASSERT_EQ(table.transitions().size(), 3u);
  EXPECT_EQ(table.transitions()[1].from, ReplicaState::kAlive);
  EXPECT_EQ(table.transitions()[1].to, ReplicaState::kSuspect);
  EXPECT_EQ(table.transitions()[2].from, ReplicaState::kSuspect);
  EXPECT_EQ(table.transitions()[2].to, ReplicaState::kDead);
}

TEST(MembershipPropertyTest, RejoinIsTheOnlyResurrectionAndIsGated) {
  MembershipTable table;
  table.Register("alice#0");
  table.OnAck("alice#0", 5);
  // Rejoin from a living replica is a stale offer echo: rejected.
  EXPECT_FALSE(table.OnRejoin("alice#0", 6));
  EXPECT_EQ(table.state("alice#0"), ReplicaState::kAlive);
  EXPECT_EQ(table.rejected_rejoins(), 1);

  table.OnLinkDown("alice#0");
  ASSERT_EQ(table.state("alice#0"), ReplicaState::kDead);

  // A replayed frame from the dead process image presents at most the
  // incarnation the coordinator already saw: rejected, still dead.
  EXPECT_FALSE(table.OnRejoin("alice#0", 5));
  EXPECT_EQ(table.state("alice#0"), ReplicaState::kDead);
  EXPECT_EQ(table.rejected_rejoins(), 2);

  // The restarted daemon bumps past everything it ever presented: admitted,
  // and the transition log records the explicit Dead -> Alive edge.
  EXPECT_TRUE(table.OnRejoin("alice#0", 6));
  EXPECT_EQ(table.state("alice#0"), ReplicaState::kAlive);
  EXPECT_EQ(table.incarnation("alice#0"), 6u);
  EXPECT_EQ(table.rejoins(), 1);
  const auto& log = table.transitions();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().from, ReplicaState::kDead);
  EXPECT_EQ(log.back().to, ReplicaState::kAlive);

  // Unknown replicas cannot "rejoin" into existence.
  EXPECT_FALSE(table.OnRejoin("ghost#9", 1));
}

TEST(MembershipPropertyTest, SuspectRecoversOnAckAndMissCounterResets) {
  MembershipOptions opts;
  opts.suspect_after_misses = 2;
  opts.dead_after_misses = 4;
  MembershipTable table(opts);
  table.Register("qp#2");
  table.OnAck("qp#2", 1);

  table.OnProbeMiss("qp#2");
  EXPECT_EQ(table.state("qp#2"), ReplicaState::kAlive);
  table.OnProbeMiss("qp#2");
  EXPECT_EQ(table.state("qp#2"), ReplicaState::kSuspect);

  // Recovery clears the miss budget completely: it takes the full
  // suspect_after_misses again to re-suspect.
  table.OnAck("qp#2", 1);
  EXPECT_EQ(table.state("qp#2"), ReplicaState::kAlive);
  table.OnProbeMiss("qp#2");
  EXPECT_EQ(table.state("qp#2"), ReplicaState::kAlive);
  table.OnProbeMiss("qp#2");
  EXPECT_EQ(table.state("qp#2"), ReplicaState::kSuspect);
  table.OnProbeMiss("qp#2");
  table.OnProbeMiss("qp#2");
  EXPECT_EQ(table.state("qp#2"), ReplicaState::kDead);
}

TEST(MembershipPropertyTest, UnknownNeverBecomesSuspectByMissesAlone) {
  // A replica that never acked is not "suspected" — there is nothing to
  // suspect; it simply stays Unknown until its first ack or a link loss.
  MembershipTable table;
  table.Register("alice#3");
  for (int i = 0; i < 10; ++i) table.OnProbeMiss("alice#3");
  EXPECT_EQ(table.state("alice#3"), ReplicaState::kUnknown);
  EXPECT_TRUE(table.transitions().empty());
}

// ---------------------------------------------------------------------------

TEST(SchedulerPropertyTest, MultisetPreservedAcrossRandomDrains) {
  for (uint64_t seed : {3u, 17u, 2718u, 31337u}) {
    std::mt19937_64 rng(seed);
    const int num_shards = 2 + static_cast<int>(rng() % 4);
    ShardScheduler sched(num_shards);

    std::set<uint64_t> outstanding;
    std::multiset<uint64_t> completed, drained;
    uint64_t next_id = 1;
    int64_t assigned_count = 0;

    for (int step = 0; step < 3000; ++step) {
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2: {  // assign
          const uint64_t id = next_id++;
          const int64_t pairs = 1 + static_cast<int64_t>(rng() % 32);
          const int shard = sched.Assign(id, pairs, /*max_inflight*/ 0);
          if (shard >= 0) {
            EXPECT_TRUE(sched.usable(shard));
            EXPECT_EQ(sched.shard_of(id), shard);
            outstanding.insert(id);
            ++assigned_count;
          } else {
            EXPECT_EQ(sched.UsableCount(), 0);
          }
          break;
        }
        case 3:
        case 4: {  // complete a random outstanding batch
          if (outstanding.empty()) break;
          auto it = outstanding.begin();
          std::advance(it, static_cast<long>(rng() % outstanding.size()));
          completed.insert(*it);
          sched.Complete(*it);
          EXPECT_EQ(sched.shard_of(*it), -1);
          outstanding.erase(it);
          break;
        }
        case 5: {  // retire a shard: drain everything it carries
          const int shard = static_cast<int>(rng() % num_shards);
          sched.SetUsable(shard, false);
          for (uint64_t id : sched.Drain(shard)) {
            ASSERT_TRUE(outstanding.count(id))
                << "seed " << seed << ": drained unknown batch " << id;
            drained.insert(id);
            outstanding.erase(id);
          }
          EXPECT_EQ(sched.inflight_pairs(shard), 0);
          EXPECT_EQ(sched.inflight_batches(shard), 0);
          break;
        }
        case 6: {  // recover a shard
          sched.SetUsable(static_cast<int>(rng() % num_shards), true);
          break;
        }
        case 7: {  // draining an empty/healthy shard is a no-op
          const int shard = static_cast<int>(rng() % num_shards);
          if (sched.inflight_batches(shard) == 0) {
            EXPECT_TRUE(sched.Drain(shard).empty());
          }
          break;
        }
      }
    }

    // assigned = completed + drained + still outstanding — nothing lost,
    // nothing duplicated.
    EXPECT_EQ(assigned_count,
              static_cast<int64_t>(completed.size() + drained.size() +
                                   outstanding.size()))
        << "seed " << seed;
    for (uint64_t id : completed) EXPECT_EQ(drained.count(id), 0u);

    // Settling the leftovers zeroes every shard's accounting.
    for (uint64_t id : outstanding) sched.Complete(id);
    for (int s = 0; s < num_shards; ++s) {
      EXPECT_EQ(sched.inflight_pairs(s), 0) << "seed " << seed;
      EXPECT_EQ(sched.inflight_batches(s), 0) << "seed " << seed;
    }
  }
}

TEST(SchedulerPropertyTest, AssignPrefersLeastLoadedAndHonorsWindow) {
  ShardScheduler sched(3);
  EXPECT_EQ(sched.Assign(1, 10), 0);  // all empty: lowest index wins
  EXPECT_EQ(sched.Assign(2, 1), 1);
  EXPECT_EQ(sched.Assign(3, 1), 2);
  EXPECT_EQ(sched.Assign(4, 1), 1);  // 1 and 2 tie at 1 pair: lowest index
  EXPECT_EQ(sched.Assign(5, 1, /*max_inflight_batches=*/2), 2);
  // Shard 0 still holds a single (pair-heavy) batch: the batch window
  // admits it even though it carries the most pairs.
  EXPECT_EQ(sched.Assign(6, 1, /*max_inflight_batches=*/2), 0);
  // Every shard now holds 2 batches; a window of 2 refuses the next one.
  EXPECT_EQ(sched.Assign(7, 1, /*max_inflight_batches=*/2), -1);
  EXPECT_EQ(sched.Assign(7, 1), 1);  // uncapped: 1 and 2 tie at 2 pairs
  sched.SetUsable(1, false);
  EXPECT_EQ(sched.Assign(8, 1), 2);  // unusable shards never chosen
}

TEST(SchedulerPropertyTest, DrainReturnsAssignmentOrder) {
  ShardScheduler sched(2);
  // Interleave shards so ids on shard 0 are not contiguous. Loads steer
  // the least-loaded choice deterministically.
  ASSERT_EQ(sched.Assign(10, 5), 0);
  ASSERT_EQ(sched.Assign(11, 1), 1);
  ASSERT_EQ(sched.Assign(12, 1), 1);
  ASSERT_EQ(sched.Assign(13, 1), 1);
  ASSERT_EQ(sched.Assign(14, 10), 1);
  ASSERT_EQ(sched.Assign(15, 1), 0);
  sched.SetUsable(1, false);
  EXPECT_EQ(sched.Drain(1), (std::vector<uint64_t>{11, 12, 13, 14}));
}

// ---------------------------------------------------------------------------

TEST(CtlVerbTest, EveryVerbRoundTripsThroughItsTag) {
  for (int v = 0; v < int{kCtlVerbCount}; ++v) {
    const CtlVerb verb = static_cast<CtlVerb>(v);
    const char* tag = CtlVerbTag(verb);
    ASSERT_NE(tag, nullptr);
    auto back = CtlVerbFromTag(tag);
    ASSERT_TRUE(back.ok()) << tag;
    EXPECT_EQ(*back, verb) << tag;
  }
  EXPECT_FALSE(CtlVerbFromTag("no_such_verb").ok());
  EXPECT_FALSE(CtlVerbFromTag("").ok());
}

TEST(CtlVerbTest, HeartbeatRoutesToItsOwnSubInbox) {
  // Heartbeats must bypass the command inbox (and the flush barrier's
  // exemption list matches these suffixes — see socket_bus.cc).
  EXPECT_EQ(CtlInbox("bob", CtlVerb::kHeartbeat), "bob:hb");
  for (int v = 0; v < int{kCtlVerbCount}; ++v) {
    const CtlVerb verb = static_cast<CtlVerb>(v);
    if (verb == CtlVerb::kHeartbeat) continue;
    EXPECT_EQ(CtlInbox("bob", verb), "bob:ctl") << CtlVerbTag(verb);
  }
}

TEST(CtlVerbTest, RequestAndResponseAreInverses) {
  CtlRequest req;
  req.verb = CtlVerb::kPairBatch;
  req.epoch = 0x0102030405060708ull;
  req.body = {1, 2, 3, 250};
  smc::Message msg = EncodeCtlRequest("coord", "bob", req);
  EXPECT_EQ(msg.to, "bob:ctl");
  EXPECT_EQ(msg.tag, CtlVerbTag(CtlVerb::kPairBatch));
  // Wire v5: the session-epoch fencing token leads every request payload.
  std::vector<uint8_t> want;
  AppendU64(req.epoch, &want);
  want.insert(want.end(), req.body.begin(), req.body.end());
  EXPECT_EQ(msg.payload, want);
  size_t off = 0;
  auto epoch = ConsumeU64(msg.payload, &off);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, req.epoch);

  CtlResponse resp;
  resp.role = "bob";
  resp.verb = CtlVerb::kPairBatch;
  resp.id = 0x1122334455667788ull;
  resp.attempt = 7;
  resp.epoch = 42;
  resp.code = StatusCode::kNotFound;
  resp.label = 2;
  resp.detail = "late";
  resp.extra = {9, 8, 7};
  std::vector<uint8_t> wire;
  AppendCtlResponse(resp, &wire);
  auto parsed = ParseCtlResponse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->role, resp.role);
  EXPECT_EQ(parsed->verb, resp.verb);
  EXPECT_EQ(parsed->id, resp.id);
  EXPECT_EQ(parsed->attempt, resp.attempt);
  EXPECT_EQ(parsed->epoch, resp.epoch);
  EXPECT_EQ(parsed->code, resp.code);
  EXPECT_EQ(parsed->label, resp.label);
  EXPECT_EQ(parsed->detail, resp.detail);
  EXPECT_EQ(parsed->extra, resp.extra);

  // Corrupt the verb past the enum: the decoder must refuse, not cast.
  std::vector<uint8_t> bad = wire;
  const size_t verb_off = 4 + resp.role.size();  // u32 len + role bytes
  bad[verb_off] = kCtlVerbCount;
  EXPECT_FALSE(ParseCtlResponse(bad).ok());
}

}  // namespace
}  // namespace hprl::net
