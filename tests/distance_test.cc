#include <gtest/gtest.h>

#include "linkage/distance.h"

namespace hprl {
namespace {

TEST(HammingTest, ZeroOrOne) {
  EXPECT_DOUBLE_EQ(HammingDistance(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(HammingDistance(3, 4), 1.0);
}

TEST(NumericDistanceTest, NormalizedAndSymmetric) {
  EXPECT_DOUBLE_EQ(NormalizedNumericDistance(10, 30, 100), 0.2);
  EXPECT_DOUBLE_EQ(NormalizedNumericDistance(30, 10, 100), 0.2);
  EXPECT_DOUBLE_EQ(NormalizedNumericDistance(5, 5, 100), 0.0);
}

TEST(NumericDistanceTest, DegenerateRange) {
  EXPECT_DOUBLE_EQ(NormalizedNumericDistance(5, 5, 0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedNumericDistance(5, 6, 0), 1.0);
}

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "ab"), 2);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("same", "same"), 0);
}

TEST(EditDistanceTest, MetricProperties) {
  const char* words[] = {"smith", "smyth", "smithe", "jones", ""};
  for (const char* a : words) {
    for (const char* b : words) {
      int dab = EditDistance(a, b);
      EXPECT_EQ(dab, EditDistance(b, a));        // symmetry
      EXPECT_EQ(dab == 0, std::string(a) == b);  // identity
      for (const char* c : words) {
        EXPECT_LE(EditDistance(a, c), dab + EditDistance(b, c));  // triangle
      }
    }
  }
}

TEST(PrefixBoundTest, EmptyPrefixIsZero) {
  EXPECT_EQ(PrefixEditDistanceLowerBound("", "abc"), 0);
  EXPECT_EQ(PrefixEditDistanceLowerBound("abc", ""), 0);
}

TEST(PrefixBoundTest, ExtensionCanRepair) {
  // "ab"* and "abc"* share extension "abc...".
  EXPECT_EQ(PrefixEditDistanceLowerBound("ab", "abc"), 0);
  EXPECT_EQ(PrefixEditDistanceLowerBound("abc", "ab"), 0);
}

TEST(PrefixBoundTest, DivergentPrefixesKeepDistance) {
  // Mismatch inside the prefix cannot be repaired by appending.
  EXPECT_GE(PrefixEditDistanceLowerBound("axc", "abc"), 1);
  EXPECT_GE(PrefixEditDistanceLowerBound("xyz", "abc"), 1);
}

TEST(PrefixBoundTest, IsLowerBoundOnExtensions) {
  // Property: for concrete extensions x of p and y of q,
  // bound(p, q) <= ed(x, y).
  const char* ps[] = {"sm", "smi", "jo"};
  const char* exts[] = {"", "th", "thers", "nes"};
  for (const char* p : ps) {
    for (const char* q : ps) {
      int bound = PrefixEditDistanceLowerBound(p, q);
      for (const char* e1 : exts) {
        for (const char* e2 : exts) {
          std::string x = std::string(p) + e1;
          std::string y = std::string(q) + e2;
          EXPECT_LE(bound, EditDistance(x, y))
              << p << "+" << e1 << " vs " << q << "+" << e2;
        }
      }
    }
  }
}

}  // namespace
}  // namespace hprl
