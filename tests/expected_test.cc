#include <gtest/gtest.h>

#include "common/random.h"
#include "linkage/expected.h"

namespace hprl {
namespace {

AttrRule CatRule() {
  AttrRule r;
  r.type = AttrType::kCategorical;
  return r;
}

AttrRule NumRule(double norm) {
  AttrRule r;
  r.type = AttrType::kNumeric;
  r.norm = norm;
  return r;
}

// Paper Eq. 5: E[d] = 1 - |V ∩ W| / (|V| |W|).
TEST(ExpectedCategoricalTest, Equation5KnownValues) {
  // Disjoint: expected Hamming distance is 1.
  EXPECT_DOUBLE_EQ(ExpectedAttrDistance(GenValue::CategoryRange(0, 2),
                                        GenValue::CategoryRange(2, 4),
                                        CatRule()),
                   1.0);
  // Identical singletons: 0.
  EXPECT_DOUBLE_EQ(ExpectedAttrDistance(GenValue::CategorySingleton(1),
                                        GenValue::CategorySingleton(1),
                                        CatRule()),
                   0.0);
  // |V| = |W| = 2, same range: 1 - 2/4 = 0.5.
  EXPECT_DOUBLE_EQ(ExpectedAttrDistance(GenValue::CategoryRange(0, 2),
                                        GenValue::CategoryRange(0, 2),
                                        CatRule()),
                   0.5);
  // |V| = 1 inside |W| = 4: 1 - 1/4.
  EXPECT_DOUBLE_EQ(ExpectedAttrDistance(GenValue::CategorySingleton(2),
                                        GenValue::CategoryRange(0, 4),
                                        CatRule()),
                   0.75);
}

TEST(ExpectedCategoricalTest, MatchesMonteCarlo) {
  Rng rng(3);
  GenValue v = GenValue::CategoryRange(1, 5);   // {1,2,3,4}
  GenValue w = GenValue::CategoryRange(3, 9);   // {3,...,8}
  double analytic = ExpectedAttrDistance(v, w, CatRule());
  int64_t mism = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    int32_t x = static_cast<int32_t>(rng.NextInt(v.cat_lo, v.cat_hi - 1));
    int32_t y = static_cast<int32_t>(rng.NextInt(w.cat_lo, w.cat_hi - 1));
    mism += x != y;
  }
  EXPECT_NEAR(analytic, static_cast<double>(mism) / n, 0.01);
}

// Paper Eq. 8 for uniform V ~ [a1,b1], W ~ [a2,b2].
TEST(ExpectedNumericTest, DegenerateIntervalsGiveSquaredDistance) {
  double ed = ExpectedAttrDistance(GenValue::NumericExact(3),
                                   GenValue::NumericExact(7), NumRule(10));
  EXPECT_NEAR(ed, 16.0 / 100.0, 1e-12);  // (3-7)^2 / norm^2
}

TEST(ExpectedNumericTest, IdenticalIntervalHasKnownClosedForm) {
  // V, W ~ U[0, w]: E[(V-W)^2] = w^2 / 6.
  double w = 12;
  double ed = ExpectedAttrDistance(GenValue::NumericInterval(0, w),
                                   GenValue::NumericInterval(0, w),
                                   NumRule(1));
  EXPECT_NEAR(ed, w * w / 6.0, 1e-9);
}

TEST(ExpectedNumericTest, MatchesMonteCarlo) {
  Rng rng(17);
  double a1 = 5, b1 = 20, a2 = 10, b2 = 40;
  double analytic =
      ExpectedAttrDistance(GenValue::NumericInterval(a1, b1),
                           GenValue::NumericInterval(a2, b2), NumRule(1));
  double sum = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextDouble(a1, b1);
    double y = rng.NextDouble(a2, b2);
    sum += (x - y) * (x - y);
  }
  EXPECT_NEAR(analytic, sum / n, analytic * 0.02);
}

TEST(ExpectedNumericTest, FartherIntervalsHaveLargerExpectation) {
  GenValue v = GenValue::NumericInterval(0, 10);
  double near = ExpectedAttrDistance(v, GenValue::NumericInterval(10, 20),
                                     NumRule(100));
  double far = ExpectedAttrDistance(v, GenValue::NumericInterval(50, 60),
                                    NumRule(100));
  EXPECT_LT(near, far);
}

TEST(ExpectedDistancesTest, VectorCoversAllAttributes) {
  MatchRule rule;
  rule.attrs = {CatRule(), NumRule(10)};
  GenSequence a = {GenValue::CategorySingleton(0), GenValue::NumericExact(1)};
  GenSequence b = {GenValue::CategorySingleton(0), GenValue::NumericExact(3)};
  auto ed = ExpectedDistances(a, b, rule);
  ASSERT_EQ(ed.size(), 2u);
  EXPECT_DOUBLE_EQ(ed[0], 0.0);
  EXPECT_NEAR(ed[1], 4.0 / 100.0, 1e-12);
}

}  // namespace
}  // namespace hprl
