#include <gtest/gtest.h>

#include "smc/schema_match.h"

namespace hprl::smc {
namespace {

SchemaMatchConfig FastConfig() {
  SchemaMatchConfig cfg;
  cfg.prime_bits = 160;
  cfg.test_seed = 31337;
  return cfg;
}

SchemaPtr MakeSchema(const std::vector<std::pair<std::string, AttrType>>& attrs) {
  auto s = std::make_shared<Schema>();
  auto dummy = std::make_shared<CategoryDomain>(std::vector<std::string>{"x"});
  for (const auto& [name, type] : attrs) {
    switch (type) {
      case AttrType::kNumeric:
        s->AddNumeric(name);
        break;
      case AttrType::kCategorical:
        s->AddCategorical(name, dummy);
        break;
      case AttrType::kText:
        s->AddText(name);
        break;
    }
  }
  return s;
}

TEST(AttributeProfileTest, NormalizesAndTagsType) {
  auto s = MakeSchema({{"Marital-Status", AttrType::kCategorical}});
  auto grams = AttributeProfile(s->attribute(0));
  // Grams come from "$maritalstatus$" — the dash is gone, case folded.
  EXPECT_NE(std::find(grams.begin(), grams.end(), "$ma"), grams.end());
  EXPECT_NE(std::find(grams.begin(), grams.end(), "lst"), grams.end());
  EXPECT_NE(std::find(grams.begin(), grams.end(), "type:categorical"),
            grams.end());
  // Short names degrade gracefully.
  auto tiny = MakeSchema({{"a", AttrType::kNumeric}});
  auto tgrams = AttributeProfile(tiny->attribute(0));
  EXPECT_GE(tgrams.size(), 2u);
}

TEST(SchemaMatchTest, IdenticalSchemasMapIdentically) {
  auto r = MakeSchema({{"age", AttrType::kNumeric},
                       {"education", AttrType::kCategorical},
                       {"occupation", AttrType::kCategorical}});
  auto result = RunPrivateSchemaMatch(*r, *r, FastConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->matches.size(), 3u);
  for (const auto& m : result->matches) {
    EXPECT_EQ(m.r_attr, m.s_attr);
    EXPECT_DOUBLE_EQ(m.similarity, 1.0);
  }
  EXPECT_GT(result->exponentiations, 0);
  EXPECT_GT(result->bytes, 0);
}

TEST(SchemaMatchTest, MatchesRenamedVariants) {
  auto r = MakeSchema({{"age", AttrType::kNumeric},
                       {"marital-status", AttrType::kCategorical},
                       {"native-country", AttrType::kCategorical}});
  auto s = MakeSchema({{"country_native", AttrType::kCategorical},
                       {"MaritalStatus", AttrType::kCategorical},
                       {"age_years", AttrType::kNumeric}});
  SchemaMatchConfig cfg = FastConfig();
  cfg.threshold = 0.3;
  auto result = RunPrivateSchemaMatch(*r, *s, cfg);
  ASSERT_TRUE(result.ok());
  std::map<int, int> mapping;
  for (const auto& m : result->matches) mapping[m.r_attr] = m.s_attr;
  EXPECT_EQ(mapping[0], 2);  // age ~ age_years
  EXPECT_EQ(mapping[1], 1);  // marital-status ~ MaritalStatus
  // native-country vs country_native share most grams but scrambled order;
  // they should still be each other's best available partner.
  EXPECT_EQ(mapping.count(2) ? mapping[2] : 0, 0);
}

TEST(SchemaMatchTest, DissimilarAttributesStayUnmatched) {
  auto r = MakeSchema({{"age", AttrType::kNumeric}});
  auto s = MakeSchema({{"occupation", AttrType::kCategorical}});
  auto result = RunPrivateSchemaMatch(*r, *s, FastConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->matches.empty());
}

TEST(SchemaMatchTest, GreedyMatchingIsOneToOne) {
  auto r = MakeSchema({{"name", AttrType::kText}, {"name2", AttrType::kText}});
  auto s = MakeSchema({{"name", AttrType::kText}});
  SchemaMatchConfig cfg = FastConfig();
  cfg.threshold = 0.2;
  auto result = RunPrivateSchemaMatch(*r, *s, cfg);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_EQ(result->matches[0].r_attr, 0);  // exact beats near-duplicate
  EXPECT_EQ(result->matches[0].s_attr, 0);
}

TEST(SchemaMatchTest, EmptySchemaRejected) {
  auto r = MakeSchema({{"x", AttrType::kNumeric}});
  Schema empty;
  EXPECT_FALSE(RunPrivateSchemaMatch(*r, empty, FastConfig()).ok());
}

}  // namespace
}  // namespace hprl::smc
