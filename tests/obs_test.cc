#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace hprl::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CounterHandlesAreStableAndSharedByName) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  b->Increment(4);
  EXPECT_EQ(registry.CounterValues().at("x"), 5);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Half the threads resolve the name every time, half cache the
      // handle — both patterns must be safe concurrently.
      Counter* cached = registry.counter("hits");
      for (int64_t i = 0; i < kPerThread; ++i) {
        if (i % 2 == 0) {
          cached->Increment();
        } else {
          registry.counter("hits")->Increment();
        }
        registry.gauge("last")->Set(static_cast<double>(i));
        registry.histogram("lat")->Observe(1.0);
        registry.RecordSpan("stage", 0.001);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.CounterValues().at("hits"), kThreads * kPerThread);
  EXPECT_EQ(registry.HistogramSummaries().at("lat").count,
            kThreads * kPerThread);
  EXPECT_EQ(registry.Spans().at("stage").count, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, HistogramPercentilesAreOrderStatistics) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  for (int i = 100; i >= 1; --i) h->Observe(static_cast<double>(i));
  Histogram::Summary s = h->Summarize();
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050);
  EXPECT_DOUBLE_EQ(s.p50, 50);  // nearest-rank: ceil(0.5 * 100) = 50th
  EXPECT_DOUBLE_EQ(s.p95, 95);
  EXPECT_DOUBLE_EQ(s.p99, 99);
}

TEST(MetricsRegistryTest, EmptyHistogramSummarizesToZeros) {
  MetricsRegistry registry;
  Histogram::Summary s = registry.histogram("lat")->Summarize();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.p99, 0);
}

TEST(NullSinkTest, HelpersIgnoreNullRegistry) {
  Add(nullptr, "x", 3);
  SetGauge(nullptr, "g", 1.0);
  Observe(nullptr, "h", 1.0);
  ScopedSpan span(nullptr, "stage");
  EXPECT_EQ(span.path(), "");
  EXPECT_GE(span.Stop(), 0.0);
}

TEST(ScopedSpanTest, NestingBuildsSlashPathsAndStopIsIdempotent) {
  MetricsRegistry registry;
  {
    ScopedSpan run(&registry, "linkage");
    EXPECT_EQ(run.path(), "linkage");
    {
      ScopedSpan block(&registry, "block", &run);
      EXPECT_EQ(block.path(), "linkage/block");
      block.Stop();
      block.Stop();  // second stop must not double-record
    }
    ScopedSpan smc(&registry, "smc", &run);
  }
  auto spans = registry.Spans();
  EXPECT_EQ(spans.at("linkage").count, 1);
  EXPECT_EQ(spans.at("linkage/block").count, 1);
  EXPECT_EQ(spans.at("linkage/smc").count, 1);
  EXPECT_GE(spans.at("linkage").total_seconds,
            spans.at("linkage/block").total_seconds);
}

// ---------------------------------------------------------------- json

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(EscapeJson("plain"), "plain");
  EXPECT_EQ(EscapeJson("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(EscapeJson("\n\t"), "\\n\\t");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, WriterProducesParsableDocument) {
  std::ostringstream out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("name");
  w.String("hprl \"quoted\"");
  w.Key("count");
  w.Int(42);
  w.Key("ratio");
  w.Double(0.1);
  w.Key("flag");
  w.Bool(true);
  w.Key("none");
  w.Null();
  w.Key("items");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();

  auto v = ParseJson(out.str());
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("name")->AsString(), "hprl \"quoted\"");
  EXPECT_EQ(v->Find("count")->AsInt(), 42);
  EXPECT_DOUBLE_EQ(v->Find("ratio")->AsDouble(), 0.1);
  EXPECT_TRUE(v->Find("flag")->AsBool());
  EXPECT_TRUE(v->Find("none")->is_null());
  ASSERT_EQ(v->Find("items")->AsArray().size(), 2u);
  EXPECT_EQ(v->Find("items")->AsArray()[1].AsInt(), 2);
}

TEST(JsonTest, DoublesRoundTripShortest) {
  for (double d : {0.1, 1.0 / 3.0, 12345.6789, -2.5e-8, 1e300}) {
    std::ostringstream out;
    JsonWriter w(&out);
    w.BeginArray();
    w.Double(d);
    w.EndArray();
    auto v = ParseJson(out.str());
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsArray()[0].AsDouble(), d);
  }
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(&out);
  w.BeginArray();
  w.Double(std::nan(""));
  w.EndArray();
  auto v = ParseJson(out.str());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->AsArray()[0].is_null());
}

TEST(JsonTest, ParserHandlesEscapesAndRejectsGarbage) {
  auto v = ParseJson(R"({"s": "aA\n\"b\""})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("s")->AsString(), "aA\n\"b\"");

  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

// ---------------------------------------------------------------- report

TEST(RunReportTest, SerializesMetricsAndRegistryDump) {
  MetricsRegistry registry;
  registry.counter("smc.invocations")->Increment(7);
  registry.gauge("blocking.efficiency")->Set(0.75);
  registry.histogram("smc.compare_seconds")->Observe(0.25);
  registry.RecordSpan("linkage", 1.5);
  registry.RecordSpan("linkage/block", 0.5);

  RunReport report;
  report.tool = "obs_test";
  report.AddConfig("k", "32");
  report.metrics.rows_r = 300;
  report.metrics.total_pairs = 90000;
  report.metrics.blocking_efficiency = 0.75;
  report.metrics.reported_matches = 42;
  report.baselines.emplace_back("pure-smc", LinkageMetrics{});
  report.registry = &registry;

  std::string json = RunReportToJson(report);
  auto v = ParseJson(json);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("schema")->AsString(), "hprl-run-report/1");
  EXPECT_EQ(v->Find("tool")->AsString(), "obs_test");
  EXPECT_EQ(v->Find("config")->Find("k")->AsString(), "32");
  EXPECT_EQ(v->Find("metrics")->Find("rows_r")->AsInt(), 300);
  EXPECT_EQ(v->Find("metrics")->Find("reported_matches")->AsInt(), 42);
  EXPECT_EQ(v->Find("baselines")->AsArray()[0].Find("name")->AsString(),
            "pure-smc");
  EXPECT_EQ(v->Find("counters")->Find("smc.invocations")->AsInt(), 7);
  EXPECT_DOUBLE_EQ(
      v->Find("gauges")->Find("blocking.efficiency")->AsDouble(), 0.75);
  EXPECT_EQ(
      v->Find("histograms")->Find("smc.compare_seconds")->Find("count")->AsInt(),
      1);
  EXPECT_DOUBLE_EQ(
      v->Find("spans")->Find("linkage/block")->Find("seconds")->AsDouble(),
      0.5);
}

TEST(RunReportTest, GoldenShapeWithoutRegistry) {
  RunReport report;
  report.tool = "t";
  std::string json = RunReportToJson(report);
  // No registry attached: the dump sections must be absent entirely, not
  // emitted empty.
  EXPECT_EQ(json.find("counters"), std::string::npos);
  EXPECT_EQ(json.find("spans"), std::string::npos);
  auto v = ParseJson(json);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("metrics")->Find("precision")->AsDouble(), 1.0);
  EXPECT_EQ(v->Find("metrics")->Find("true_matches")->AsInt(), -1);
}

}  // namespace
}  // namespace hprl::obs
