#include <gtest/gtest.h>

#include <map>

#include "adult/adult.h"

namespace hprl::adult {
namespace {

class AdultTest : public ::testing::Test {
 protected:
  AdultHierarchies h_ = BuildAdultHierarchies();
};

TEST_F(AdultTest, HierarchyLeafCountsMatchAdultDomains) {
  EXPECT_EQ(h_.workclass->num_leaves(), 7);
  EXPECT_EQ(h_.education->num_leaves(), 16);
  EXPECT_EQ(h_.marital_status->num_leaves(), 7);
  EXPECT_EQ(h_.occupation->num_leaves(), 14);
  EXPECT_EQ(h_.race->num_leaves(), 5);
  EXPECT_EQ(h_.sex->num_leaves(), 2);
  EXPECT_EQ(h_.native_country->num_leaves(), 41);
  EXPECT_EQ(h_.age->num_leaves(), 12);
}

TEST_F(AdultTest, AgeHierarchyIsPaperShape) {
  // 4 levels (ANY + 3), equi-width 8-unit leaves covering [16, 112).
  EXPECT_EQ(h_.age->height(), 3);
  EXPECT_DOUBLE_EQ(h_.age->node(Vgh::kRoot).lo, 16);
  EXPECT_DOUBLE_EQ(h_.age->node(Vgh::kRoot).hi, 112);
  for (int32_t i = 0; i < h_.age->num_leaves(); ++i) {
    const auto& n = h_.age->node(h_.age->leaf_node(i));
    EXPECT_DOUBLE_EQ(n.hi - n.lo, 8);
  }
}

TEST_F(AdultTest, ByNameResolvesAllQids) {
  for (const auto& name : AdultQidNames()) {
    EXPECT_NE(h_.ByName(name), nullptr) << name;
  }
  EXPECT_EQ(h_.ByName("bogus"), nullptr);
}

TEST_F(AdultTest, SchemaLayout) {
  SchemaPtr schema = BuildAdultSchema(h_);
  EXPECT_EQ(schema->num_attributes(), 10);
  EXPECT_EQ(schema->attribute(0).name, "age");
  EXPECT_EQ(schema->attribute(0).type, AttrType::kNumeric);
  EXPECT_EQ(schema->attribute(9).name, "income");
  // QIDs come first, in top-q order.
  const auto& names = AdultQidNames();
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(schema->attribute(static_cast<int>(i)).name, names[i]);
  }
  // Category ids equal VGH leaf indexes.
  EXPECT_EQ(schema->attribute(2).domain->Find("9th"),
            h_.education->node(h_.education->FindByLabel("9th")).leaf_begin);
}

TEST_F(AdultTest, GeneratorIsDeterministic) {
  Table a = GenerateAdult(200, 7, h_);
  Table b = GenerateAdult(200, 7, h_);
  ASSERT_EQ(a.num_rows(), 200);
  for (int64_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.row(i), b.row(i)) << "row " << i;
  }
  Table c = GenerateAdult(200, 8, h_);
  int diff = 0;
  for (int64_t i = 0; i < a.num_rows(); ++i) diff += a.row(i) != c.row(i);
  EXPECT_GT(diff, 150);
}

TEST_F(AdultTest, GeneratedValuesAreInDomain) {
  SchemaPtr schema = BuildAdultSchema(h_);
  Table t = GenerateAdult(2000, 42, h_);
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    double age = t.at(i, 0).num();
    EXPECT_GE(age, 17);
    EXPECT_LE(age, 90);
    double hours = t.at(i, 8).num();
    EXPECT_GE(hours, 1);
    EXPECT_LE(hours, 98);
    for (int c : {1, 2, 3, 4, 5, 6, 7, 9}) {
      int32_t id = t.at(i, c).category();
      EXPECT_GE(id, 0);
      EXPECT_LT(id, schema->attribute(c).domain->size());
    }
  }
}

TEST_F(AdultTest, MarginalsRoughlyMatchPublishedAdult) {
  SchemaPtr schema = BuildAdultSchema(h_);
  Table t = GenerateAdult(30000, 1, h_);
  std::map<std::string, int> work_counts;
  int male = 0, high_income = 0, us = 0;
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    work_counts[schema->RenderValue(1, t.at(i, 1))]++;
    male += schema->RenderValue(6, t.at(i, 6)) == "Male";
    high_income += schema->RenderValue(9, t.at(i, 9)) == ">50K";
    us += schema->RenderValue(7, t.at(i, 7)) == "United-States";
  }
  double n = static_cast<double>(t.num_rows());
  EXPECT_NEAR(work_counts["Private"] / n, 0.737, 0.03);
  EXPECT_NEAR(male / n, 0.675, 0.02);
  EXPECT_NEAR(us / n, 0.90, 0.04);
  // Income skew in the published Adult ballpark (~25% >50K).
  EXPECT_GT(high_income / n, 0.12);
  EXPECT_LT(high_income / n, 0.40);
}

TEST_F(AdultTest, CorrelationsHaveExpectedSign) {
  SchemaPtr schema = BuildAdultSchema(h_);
  Table t = GenerateAdult(30000, 2, h_);
  // Graduate education should make >50K much more likely than junior-sec.
  int grad_n = 0, grad_hi = 0, sec_n = 0, sec_hi = 0;
  int young_never = 0, young_n = 0, old_never = 0, old_n = 0;
  const Vgh& edu = *h_.education;
  int grad_node = edu.FindByLabel("Grad School");
  for (int64_t i = 0; i < t.num_rows(); ++i) {
    int leaf = edu.LeafForCategory(t.at(i, 2).category());
    bool hi = schema->RenderValue(9, t.at(i, 9)) == ">50K";
    if (edu.AncestorAtLevel(leaf, 2) == grad_node) {
      ++grad_n;
      grad_hi += hi;
    } else if (edu.AncestorAtLevel(leaf, 1) == edu.FindByLabel("Secondary")) {
      ++sec_n;
      sec_hi += hi;
    }
    bool never =
        schema->RenderValue(3, t.at(i, 3)) == "Never-married";
    if (t.at(i, 0).num() < 25) {
      ++young_n;
      young_never += never;
    } else if (t.at(i, 0).num() >= 40) {
      ++old_n;
      old_never += never;
    }
  }
  ASSERT_GT(grad_n, 100);
  ASSERT_GT(sec_n, 100);
  EXPECT_GT(static_cast<double>(grad_hi) / grad_n,
            2.0 * static_cast<double>(sec_hi) / sec_n);
  EXPECT_GT(static_cast<double>(young_never) / young_n,
            3.0 * static_cast<double>(old_never) / old_n);
}

TEST_F(AdultTest, WorkHrsVghMatchesPaperFigure) {
  auto vgh = MakeWorkHrsVgh();
  ASSERT_TRUE(vgh.ok());
  EXPECT_DOUBLE_EQ(vgh->RootRange(), 98);  // the paper's normFactor
  auto leaf35 = vgh->LeafForNumeric(35);
  ASSERT_TRUE(leaf35.ok());
  EXPECT_DOUBLE_EQ(vgh->node(*leaf35).lo, 35);
  EXPECT_DOUBLE_EQ(vgh->node(*leaf35).hi, 37);
  auto leaf50 = vgh->LeafForNumeric(50);
  ASSERT_TRUE(leaf50.ok());
  EXPECT_DOUBLE_EQ(vgh->node(*leaf50).lo, 37);
}

TEST_F(AdultTest, ExampleEducationVghShape) {
  auto vgh = MakeExampleEducationVgh();
  ASSERT_TRUE(vgh.ok());
  EXPECT_EQ(vgh->num_leaves(), 7);
  EXPECT_GE(vgh->FindByLabel("Masters"), 0);
  EXPECT_EQ(vgh->node(vgh->FindByLabel("Senior Sec.")).children.size(), 2u);
}

}  // namespace
}  // namespace hprl::adult
