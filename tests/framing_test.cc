// Tests for the zero-copy framing layer (src/net/frame.h FrameView,
// src/net/buffer_pool.h BufferPool): the non-owning decoder must agree with
// the owning DecodeFrame on every randomized message and on truncation at
// every prefix length, the scatter-gather header must reproduce EncodeFrame's
// bytes exactly, and pooled read buffers must recycle instead of reallocate.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/buffer_pool.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "smc/channel.h"

namespace hprl {
namespace {

using net::BufferPool;
using net::DecodeFrame;
using net::DecodeFrameView;
using net::EncodeFrame;
using net::EncodeFrameHeader;
using net::FrameSize;
using smc::Message;

// ------------------------------------------------------------- FrameView

Message RandomMessage(std::mt19937& rng) {
  auto name = [&](size_t max_len) {
    std::uniform_int_distribution<size_t> len(1, max_len);
    std::uniform_int_distribution<int> ch('a', 'z');
    std::string s(len(rng), '\0');
    for (char& c : s) c = static_cast<char>(ch(rng));
    return s;
  };
  Message msg;
  msg.from = name(12);
  msg.to = name(12);
  msg.tag = name(20);
  std::uniform_int_distribution<size_t> plen(0, 600);
  std::uniform_int_distribution<int> byte(0, 255);
  msg.payload.resize(plen(rng));
  for (uint8_t& b : msg.payload) b = static_cast<uint8_t>(byte(rng));
  msg.seq = std::uniform_int_distribution<uint64_t>(1, 1u << 30)(rng);
  msg.checksum = smc::PayloadChecksum(msg.payload);
  return msg;
}

// Property: on any well-formed frame, the zero-copy view and the owning
// decoder agree field-for-field, the view's fields alias the input buffer,
// and ToMessage() materializes the identical Message.
TEST(FrameViewTest, AgreesWithOwningDecodeOnRandomMessages) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    Message msg = RandomMessage(rng);
    std::vector<uint8_t> wire = EncodeFrame(msg);
    const uint8_t* body = wire.data() + 4;
    const size_t body_len = wire.size() - 4;

    auto view = DecodeFrameView(body, body_len);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    auto owned = DecodeFrame(body, body_len);
    ASSERT_TRUE(owned.ok()) << owned.status().ToString();

    EXPECT_EQ(view->from, owned->from);
    EXPECT_EQ(view->to, owned->to);
    EXPECT_EQ(view->tag, owned->tag);
    EXPECT_EQ(view->seq, owned->seq);
    EXPECT_EQ(view->checksum, owned->checksum);
    ASSERT_EQ(view->payload_size, owned->payload.size());
    EXPECT_EQ(std::vector<uint8_t>(view->payload,
                                   view->payload + view->payload_size),
              owned->payload);

    // Zero-copy means zero copies: every view field points into the body.
    auto aliases = [&](const void* p) {
      return p >= body && p < body + body_len;
    };
    EXPECT_TRUE(aliases(view->from.data()));
    EXPECT_TRUE(aliases(view->to.data()));
    EXPECT_TRUE(aliases(view->tag.data()));
    if (view->payload_size > 0) {
      EXPECT_TRUE(aliases(view->payload));
    }

    Message materialized = view->ToMessage();
    EXPECT_EQ(materialized.from, msg.from);
    EXPECT_EQ(materialized.to, msg.to);
    EXPECT_EQ(materialized.tag, msg.tag);
    EXPECT_EQ(materialized.payload, msg.payload);
    EXPECT_EQ(materialized.seq, msg.seq);
    EXPECT_EQ(materialized.checksum, msg.checksum);
  }
}

// Property: at every truncated prefix length both decoders reject, and they
// reject together — one codec, two ownership disciplines.
TEST(FrameViewTest, RejectsTruncationAtEveryLengthExactlyLikeDecodeFrame) {
  std::mt19937 rng(777);
  Message msg = RandomMessage(rng);
  std::vector<uint8_t> wire = EncodeFrame(msg);
  const uint8_t* body = wire.data() + 4;
  const size_t body_len = wire.size() - 4;
  for (size_t n = 0; n < body_len; ++n) {
    auto view = DecodeFrameView(body, n);
    auto owned = DecodeFrame(body, n);
    EXPECT_FALSE(view.ok()) << "n=" << n;
    EXPECT_FALSE(owned.ok()) << "n=" << n;
  }
  EXPECT_TRUE(DecodeFrameView(body, body_len).ok());
}

TEST(FrameViewTest, RejectsStampedChecksumMismatch) {
  std::mt19937 rng(99);
  Message msg = RandomMessage(rng);
  std::vector<uint8_t> wire = EncodeFrame(msg);
  wire.back() ^= 0x01;  // flip one payload bit
  auto view = DecodeFrameView(wire.data() + 4, wire.size() - 4);
  EXPECT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kIOError);
}

// The scatter-gather sender path: EncodeFrameHeader(msg) ++ msg.payload must
// be byte-identical to EncodeFrame(msg), so writev'ing {header, payload}
// puts exactly the same frame on the wire.
TEST(FrameViewTest, HeaderPlusPayloadEqualsEncodeFrame) {
  std::mt19937 rng(4242);
  for (int iter = 0; iter < 50; ++iter) {
    Message msg = RandomMessage(rng);
    std::vector<uint8_t> whole = EncodeFrame(msg);
    std::vector<uint8_t> gathered = EncodeFrameHeader(msg);
    gathered.insert(gathered.end(), msg.payload.begin(), msg.payload.end());
    EXPECT_EQ(gathered, whole);
    EXPECT_EQ(whole.size(), FrameSize(msg));
  }
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPoolTest, RecyclesReleasedBlocks) {
  BufferPool pool(1024);
  auto first = pool.Acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(pool.outstanding(), 1);
  EXPECT_EQ(pool.expanded(), 1);
  EXPECT_EQ(pool.reused(), 0);

  std::vector<uint8_t>* storage = first.get();
  first->assign(512, 0xCD);
  first.reset();  // release: back to the free list, not the heap
  EXPECT_EQ(pool.outstanding(), 0);

  auto second = pool.Acquire();
  EXPECT_EQ(second.get(), storage);  // same storage, recycled
  EXPECT_EQ(second->size(), 0u);     // handed back empty
  EXPECT_EQ(pool.reused(), 1);
  EXPECT_EQ(pool.expanded(), 1);  // no new allocation
}

TEST(BufferPoolTest, ConcurrentLeasesGetDistinctBlocks) {
  BufferPool pool(256);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.outstanding(), 2);
  EXPECT_EQ(pool.expanded(), 2);
}

// The ref count is the lease: a copy of the Block (e.g. a FrameView holder)
// keeps the storage out of the free list until the last copy drops.
TEST(BufferPoolTest, SharedReferenceDefersRecycling) {
  BufferPool pool(256);
  auto block = pool.Acquire();
  BufferPool::Block holder = block;  // second leaseholder
  block.reset();
  EXPECT_EQ(pool.outstanding(), 1);  // still leased via holder

  auto other = pool.Acquire();
  EXPECT_NE(other.get(), holder.get());  // must not hand out the held block

  holder.reset();
  EXPECT_EQ(pool.outstanding(), 1);  // only `other` remains
}

// Blocks may outlive the pool (a Message materialized late, a bus torn down
// with a frame still referenced): the deleter must degrade to a normal free.
TEST(BufferPoolTest, BlockOutlivesPool) {
  BufferPool::Block survivor;
  {
    BufferPool pool(128);
    survivor = pool.Acquire();
    survivor->assign(64, 0xEE);
  }
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->size(), 64u);
  survivor.reset();  // frees normally; ASan would flag a dangling pool
}

TEST(BufferPoolTest, PublishesGauges) {
  obs::MetricsRegistry registry;
  BufferPool pool(512);
  pool.AttachMetrics(&registry);

  auto a = pool.Acquire();
  auto b = pool.Acquire();
  b.reset();
  auto c = pool.Acquire();  // reuses b's block

  EXPECT_EQ(registry.gauge("net.buffer_pool.outstanding")->value(), 2);
  EXPECT_EQ(registry.gauge("net.buffer_pool.reused")->value(), 1);
  EXPECT_EQ(registry.gauge("net.buffer_pool.expanded")->value(), 2);
}

}  // namespace
}  // namespace hprl
