// Determinism of the batch-parallel SMC engine: every thread count must
// produce bit-identical labels, identical budget accounting and identical
// deterministic metrics. (smc.bytes_sent is deliberately NOT compared — the
// serialized length of a ciphertext depends on its random value, so byte
// traffic is equal only in distribution across thread counts.)

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/session.h"
#include "smc/batch_engine.h"
#include "smc/protocol.h"
#include "smc/smc_oracle.h"

namespace hprl {
namespace {

struct Workload {
  ExperimentData data;
  AnonymizedTable anon_r;
  AnonymizedTable anon_s;
  MatchRule rule;
};

const Workload& SmallWorkload() {
  static const Workload* w = [] {
    auto data = PrepareAdultData(80, 77);
    EXPECT_TRUE(data.ok());
    auto cfg = MakeAdultAnonConfig(*data, 3, 4);
    EXPECT_TRUE(cfg.ok());
    auto anonymizer = MakeMaxEntropyAnonymizer(*cfg);
    auto anon_r = anonymizer->Anonymize(data->split.d1);
    auto anon_s = anonymizer->Anonymize(data->split.d2);
    EXPECT_TRUE(anon_r.ok() && anon_s.ok());
    std::vector<VghPtr> vghs;
    for (const auto& n : adult::AdultQidNames()) {
      vghs.push_back(data->hierarchies.ByName(n));
    }
    auto rule =
        MakeUniformRule(data->schema, adult::AdultQidNames(), vghs, 3, 0.05);
    EXPECT_TRUE(rule.ok());
    return new Workload{std::move(data).value(), std::move(anon_r).value(),
                        std::move(anon_s).value(), std::move(rule).value()};
  }();
  return *w;
}

smc::SmcConfig TestSmcConfig() {
  smc::SmcConfig cfg;
  cfg.key_bits = 256;  // small key keeps the suite fast; semantics equal
  cfg.test_seed = 11;
  return cfg;
}

std::vector<RowPairRequest> MakeBatch(const Workload& w, size_t limit) {
  std::vector<RowPairRequest> batch;
  const Table& r = w.data.split.d1;
  const Table& s = w.data.split.d2;
  for (int64_t i = 0; i < r.num_rows() && batch.size() < limit; ++i) {
    for (int64_t j = 0; j < s.num_rows() && batch.size() < limit; ++j) {
      batch.push_back({i, j, &r.row(i), &s.row(j)});
    }
  }
  return batch;
}

TEST(BatchSmcEngineTest, BatchLabelsIdenticalAcrossThreadCounts) {
  const Workload& w = SmallWorkload();
  const auto batch = MakeBatch(w, 40);

  std::vector<std::vector<uint8_t>> labels_by_threads;
  std::vector<smc::SmcCosts> costs_by_threads;
  for (int threads : {1, 4}) {
    smc::BatchSmcEngine engine(TestSmcConfig(), w.rule, threads);
    ASSERT_TRUE(engine.Init().ok());
    auto labels = engine.CompareBatch(batch);
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
    labels_by_threads.push_back(std::move(labels).value());
    costs_by_threads.push_back(engine.costs());
  }
  EXPECT_EQ(labels_by_threads[0], labels_by_threads[1]);
  EXPECT_EQ(costs_by_threads[0].invocations, costs_by_threads[1].invocations);
  EXPECT_EQ(costs_by_threads[0].encryptions, costs_by_threads[1].encryptions);
  EXPECT_EQ(costs_by_threads[0].decryptions, costs_by_threads[1].decryptions);

  // And the labels are the exact plaintext outcomes (SMC is exact).
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(labels_by_threads[0][i] != 0,
              RecordsMatch(*batch[i].a, *batch[i].b, w.rule))
        << i;
  }
}

TEST(BatchSmcEngineTest, BatchAgreesWithSerialCompareRows) {
  const Workload& w = SmallWorkload();
  const auto batch = MakeBatch(w, 20);

  smc::BatchSmcEngine engine(TestSmcConfig(), w.rule, 3);
  ASSERT_TRUE(engine.Init().ok());
  auto labels = engine.CompareBatch(batch);
  ASSERT_TRUE(labels.ok());

  smc::BatchSmcEngine serial(TestSmcConfig(), w.rule, 1);
  ASSERT_TRUE(serial.Init().ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    auto m = serial.CompareRows(batch[i].a_id, batch[i].b_id, *batch[i].a,
                                *batch[i].b);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ((*labels)[i] != 0, *m) << i;
  }
}

// The full pipeline: serial and parallel SMC oracles must produce identical
// HybridResults — same links, same budget accounting — and identical
// deterministic metrics.
TEST(ParallelSmcPipelineTest, SerialAndParallelRunsAreIdentical) {
  const Workload& w = SmallWorkload();

  HybridConfig hc;
  hc.rule = w.rule;
  hc.smc_allowance_fraction = 1.0;
  hc.collect_matches = true;

  struct RunOutcome {
    HybridResult result;
    std::map<std::string, int64_t> counters;
    std::map<std::string, obs::Histogram::Summary> histograms;
  };
  auto run_with = [&](int smc_threads) -> RunOutcome {
    smc::SmcMatchOracle oracle(TestSmcConfig(), w.rule, smc_threads);
    EXPECT_TRUE(oracle.Init().ok());
    obs::MetricsRegistry registry;
    auto out = LinkageSession()
                   .WithTables(w.data.split.d1, w.data.split.d2)
                   .WithReleases(w.anon_r, w.anon_s)
                   .WithConfig(hc)
                   .WithOracle(oracle)
                   .WithMetrics(&registry)
                   .Run();
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return {std::move(out).value(), registry.CounterValues(),
            registry.HistogramSummaries()};
  };

  RunOutcome serial = run_with(1);
  RunOutcome parallel = run_with(4);

  // Identical links (order included: results are position-addressed).
  EXPECT_EQ(serial.result.matched_row_pairs, parallel.result.matched_row_pairs);
  EXPECT_GT(serial.result.matched_row_pairs.size(), 0u);

  // Identical budget accounting.
  EXPECT_EQ(serial.result.smc_processed, parallel.result.smc_processed);
  EXPECT_EQ(serial.result.smc_matched, parallel.result.smc_matched);
  EXPECT_EQ(serial.result.reported_matches, parallel.result.reported_matches);
  EXPECT_EQ(serial.result.allowance_pairs, parallel.result.allowance_pairs);
  EXPECT_EQ(serial.result.unknown_pairs, parallel.result.unknown_pairs);
  EXPECT_GT(serial.result.smc_processed, 0);

  // Identical deterministic counters. Byte/traffic counters are excluded on
  // purpose (see file comment); pool hit/miss split depends on filler timing
  // but the total number of takes does not.
  for (const char* name :
       {"smc.invocations", "smc.matched", "smc.allowance_pairs", "smc.rounds",
        "smc.attr_comparisons", "smc.batches", "linkage.reported_matches",
        "paillier.decryptions", "paillier.encryptions",
        "paillier.homomorphic_adds", "paillier.scalar_muls",
        "blocking.pairs_total", "blocking.pairs_m", "blocking.pairs_u",
        "blocking.slack_cache_hits", "blocking.slack_cache_misses"}) {
    ASSERT_TRUE(serial.counters.count(name)) << name;
    ASSERT_TRUE(parallel.counters.count(name)) << name;
    EXPECT_EQ(serial.counters.at(name), parallel.counters.at(name)) << name;
  }
  const int64_t serial_takes =
      serial.counters.at("paillier.randomizer_pool_hits") +
      serial.counters.at("paillier.randomizer_pool_misses");
  const int64_t parallel_takes =
      parallel.counters.at("paillier.randomizer_pool_hits") +
      parallel.counters.at("paillier.randomizer_pool_misses");
  EXPECT_EQ(serial_takes, parallel_takes);

  // Same number of per-compare and per-batch latency samples.
  EXPECT_EQ(serial.histograms.at("smc.compare_seconds").count,
            parallel.histograms.at("smc.compare_seconds").count);
  EXPECT_EQ(serial.histograms.at("smc.batch_seconds").count,
            parallel.histograms.at("smc.batch_seconds").count);
}

smc::SmcConfig PackedSmcConfig(int pack_pairs, int slot_bits = 64) {
  smc::SmcConfig cfg = TestSmcConfig();
  // A 512-bit modulus gives the packed layout 7 slots, so groups hold more
  // than one pair and the amortization assertions below have teeth.
  cfg.key_bits = 512;
  cfg.pack_pairs = pack_pairs;
  cfg.pack_slot_bits = slot_bits;
  return cfg;
}

// The packed fast path must be a pure optimization: bit-identical labels to
// the scalar exchange, at every thread count, while actually exercising the
// packed exchange (the cost counters prove it ran).
TEST(PackedSmcTest, PackedLabelsBitIdenticalToScalar) {
  const Workload& w = SmallWorkload();
  const auto batch = MakeBatch(w, 40);

  smc::BatchSmcEngine scalar(TestSmcConfig(), w.rule, 2);
  ASSERT_TRUE(scalar.Init().ok());
  auto scalar_labels = scalar.CompareBatch(batch);
  ASSERT_TRUE(scalar_labels.ok());
  EXPECT_EQ(scalar.costs().packed_exchanges, 0);

  for (int threads : {1, 4}) {
    smc::BatchSmcEngine packed(PackedSmcConfig(4), w.rule, threads);
    ASSERT_TRUE(packed.Init().ok());
    auto labels = packed.CompareBatch(batch);
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
    EXPECT_EQ(*labels, *scalar_labels) << "threads=" << threads;
    EXPECT_GT(packed.costs().packed_exchanges, 0) << "threads=" << threads;
    EXPECT_GT(packed.costs().packed_pairs,
              packed.costs().packed_exchanges)  // > 1 pair per exchange
        << "threads=" << threads;
  }
}

// Same fault schedule + same seed => the packed engine is deterministic
// across thread counts (quarantine labels included).
TEST(PackedSmcTest, PackedDeterministicUnderFaults) {
  const Workload& w = SmallWorkload();
  const auto batch = MakeBatch(w, 40);

  smc::SmcConfig cfg = PackedSmcConfig(4);
  cfg.fault_plan.seed = 47;
  cfg.fault_plan.drop_rate = 0.15;
  cfg.fault_plan.corrupt_rate = 0.10;

  std::vector<std::vector<uint8_t>> by_threads;
  for (int threads : {1, 4}) {
    smc::BatchSmcEngine engine(cfg, w.rule, threads);
    ASSERT_TRUE(engine.Init().ok());
    auto labels = engine.CompareBatch(batch);
    ASSERT_TRUE(labels.ok()) << labels.status().ToString();
    by_threads.push_back(std::move(labels).value());
  }
  EXPECT_EQ(by_threads[0], by_threads[1]);
}

// Slots too narrow for the scaled attribute values: every pair fails the
// (|x|+|y|)² carry-safety check, falls back to the scalar exchange inside
// its group, and still gets the exact label.
TEST(PackedSmcTest, NarrowSlotsFallBackToScalarPerPair) {
  const Workload& w = SmallWorkload();
  const auto batch = MakeBatch(w, 20);

  smc::BatchSmcEngine scalar(TestSmcConfig(), w.rule, 2);
  ASSERT_TRUE(scalar.Init().ok());
  auto scalar_labels = scalar.CompareBatch(batch);
  ASSERT_TRUE(scalar_labels.ok());

  // fp_scale = 1000 makes every numeric encoding ≥ 10⁴ in magnitude, so an
  // 8-bit slot can never hold its squared sum.
  smc::BatchSmcEngine narrow(PackedSmcConfig(4, /*slot_bits=*/8), w.rule, 2);
  ASSERT_TRUE(narrow.Init().ok());
  auto labels = narrow.CompareBatch(batch);
  ASSERT_TRUE(labels.ok()) << labels.status().ToString();
  EXPECT_EQ(*labels, *scalar_labels);
  EXPECT_EQ(narrow.costs().packed_pairs, 0);
}

// Packing requires revealed distances (the packed plaintext IS the distance
// vector): a blinded config must ignore pack_pairs entirely.
TEST(PackedSmcTest, BlindedConfigDisablesPacking) {
  const Workload& w = SmallWorkload();
  smc::SmcConfig cfg = PackedSmcConfig(4);
  cfg.reveal_distances = false;
  smc::SecureRecordComparator comparator(cfg, w.rule);
  EXPECT_EQ(comparator.PackedGroupPairs(), 0);

  const auto batch = MakeBatch(w, 12);
  smc::BatchSmcEngine engine(cfg, w.rule, 2);
  ASSERT_TRUE(engine.Init().ok());
  auto labels = engine.CompareBatch(batch);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(engine.costs().packed_exchanges, 0);

  smc::SmcConfig blinded_scalar = TestSmcConfig();
  blinded_scalar.reveal_distances = false;
  smc::BatchSmcEngine reference(blinded_scalar, w.rule, 2);
  ASSERT_TRUE(reference.Init().ok());
  auto ref_labels = reference.CompareBatch(batch);
  ASSERT_TRUE(ref_labels.ok());
  EXPECT_EQ(*labels, *ref_labels);
}

}  // namespace
}  // namespace hprl
