#include <gtest/gtest.h>

#include <set>

#include "adult/adult.h"
#include "anon/anonymizer.h"
#include "anon/metrics.h"
#include "core/experiment.h"

namespace hprl {
namespace {

/// Shared small Adult sample.
class AnonFixture {
 public:
  static const ExperimentData& Data() {
    static const ExperimentData* data = [] {
      auto d = PrepareAdultData(900, 11);
      EXPECT_TRUE(d.ok());
      return new ExperimentData(std::move(d).value());
    }();
    return *data;
  }
};

/// Every row of every group must be consistent with the group's sequence:
/// the generalization is imprecise but always accurate (paper §IV).
void CheckConsistency(const Table& table, const AnonymizedTable& anon,
                      const AnonymizerConfig& cfg) {
  int64_t covered = 0;
  std::set<int64_t> seen;
  for (const auto& g : anon.groups) {
    for (int64_t row : g.rows) {
      EXPECT_TRUE(seen.insert(row).second) << "row in two groups";
      ++covered;
      for (size_t q = 0; q < cfg.qid_attrs.size(); ++q) {
        const GenValue& gv = g.seq[q];
        const Value& v = table.at(row, cfg.qid_attrs[q]);
        if (gv.type == AttrType::kCategorical) {
          EXPECT_GE(v.category(), gv.cat_lo);
          EXPECT_LT(v.category(), gv.cat_hi);
        } else {
          EXPECT_GE(v.num(), gv.num_lo);
          EXPECT_LE(v.num(), gv.num_hi + 1e-9);
        }
      }
    }
  }
  EXPECT_EQ(covered, table.num_rows());
}

struct MethodK {
  std::string method;
  int64_t k;
};

class AnonymizerParamTest : public ::testing::TestWithParam<MethodK> {};

TEST_P(AnonymizerParamTest, ProducesValidKAnonymousPartition) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, GetParam().k);
  ASSERT_TRUE(cfg.ok());
  auto anonymizer = MakeAnonymizerByName(GetParam().method, *cfg);
  ASSERT_TRUE(anonymizer.ok());

  auto anon = (*anonymizer)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok()) << anon.status().ToString();
  EXPECT_EQ(anon->num_rows, data.split.d1.num_rows());
  EXPECT_TRUE(anon->IsKAnonymous(GetParam().k))
      << GetParam().method << " k=" << GetParam().k
      << " min group=" << anon->MinGroupSize();
  CheckConsistency(data.split.d1, *anon, *cfg);
  // DataFly may suppress at most k rows.
  EXPECT_LE(anon->suppressed, GetParam().k);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndKs, AnonymizerParamTest,
    ::testing::Values(MethodK{"MaxEntropy", 2}, MethodK{"MaxEntropy", 8},
                      MethodK{"MaxEntropy", 32}, MethodK{"MaxEntropy", 128},
                      MethodK{"TDS", 2}, MethodK{"TDS", 8}, MethodK{"TDS", 32},
                      MethodK{"TDS", 128}, MethodK{"DataFly", 2},
                      MethodK{"DataFly", 8}, MethodK{"DataFly", 32},
                      MethodK{"DataFly", 128}, MethodK{"Mondrian", 2},
                      MethodK{"Mondrian", 8}, MethodK{"Mondrian", 32},
                      MethodK{"Mondrian", 128}, MethodK{"Incognito", 2},
                      MethodK{"Incognito", 8}, MethodK{"Incognito", 32},
                      MethodK{"Incognito", 128}),
    [](const ::testing::TestParamInfo<MethodK>& info) {
      return info.param.method + "_k" + std::to_string(info.param.k);
    });

TEST(MaxEntropyTest, KOneReleasesOriginalNumericValues) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 1);
  ASSERT_TRUE(cfg.ok());
  auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());
  // Paper §III extreme (1): k=1 means the release is fully specific — every
  // sequence value is a singleton.
  for (const auto& g : anon->groups) {
    for (const auto& gv : g.seq) {
      EXPECT_TRUE(gv.IsSingleton());
    }
  }
}

TEST(MaxEntropyTest, LargeKCollapsesTowardRoot) {
  const auto& data = AnonFixture::Data();
  int64_t n = data.split.d1.num_rows();
  auto cfg = MakeAdultAnonConfig(data, 5, n);
  ASSERT_TRUE(cfg.ok());
  auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());
  // Paper §III extreme (2): k=|R| leaves (essentially) one root group.
  EXPECT_EQ(anon->NumSequences(), 1);
}

TEST(MaxEntropyTest, SequencesDecreaseWithK) {
  const auto& data = AnonFixture::Data();
  int64_t prev = -1;
  for (int64_t k : {2, 8, 32, 128}) {
    auto cfg = MakeAdultAnonConfig(data, 5, k);
    ASSERT_TRUE(cfg.ok());
    auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
    ASSERT_TRUE(anon.ok());
    if (prev >= 0) {
      EXPECT_LE(anon->NumSequences(), prev) << "k=" << k;
    }
    prev = anon->NumSequences();
  }
}

TEST(MaxEntropyTest, BeatsTdsAndDataflyOnSequenceCount) {
  // The paper's Fig. 2 headline at small k.
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  auto me = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  auto tds = MakeTdsAnonymizer(*cfg)->Anonymize(data.split.d1);
  auto df = MakeDataflyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(me.ok());
  ASSERT_TRUE(tds.ok());
  ASSERT_TRUE(df.ok());
  EXPECT_GT(me->NumSequences(), tds->NumSequences());
  EXPECT_GT(me->NumSequences(), df->NumSequences());
}

TEST(TdsTest, RequiresClassAttribute) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  cfg->class_attr = -1;
  auto anon = MakeTdsAnonymizer(*cfg)->Anonymize(data.split.d1);
  EXPECT_FALSE(anon.ok());
}

TEST(DataflySuppressionTest, SuppressionGroupIsRootSequence) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 16);
  ASSERT_TRUE(cfg.ok());
  auto anon = MakeDataflyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());
  for (const auto& g : anon->groups) {
    if (!g.is_suppression_group) continue;
    EXPECT_EQ(static_cast<int64_t>(g.rows.size()), anon->suppressed);
    for (size_t q = 0; q < g.seq.size(); ++q) {
      const GenValue& gv = g.seq[q];
      if (gv.type == AttrType::kCategorical) {
        EXPECT_EQ(gv.cat_lo, 0);
        EXPECT_EQ(gv.cat_hi, cfg->hierarchies[q]->num_leaves());
      } else {
        EXPECT_DOUBLE_EQ(gv.num_lo, cfg->hierarchies[q]->node(Vgh::kRoot).lo);
      }
    }
  }
}

TEST(QidDataTest, RejectsBadConfigs) {
  const auto& data = AnonFixture::Data();
  {
    AnonymizerConfig cfg;  // no QIDs
    cfg.k = 4;
    EXPECT_FALSE(MakeMaxEntropyAnonymizer(cfg)
                     ->Anonymize(data.split.d1)
                     .ok());
  }
  {
    auto cfg = MakeAdultAnonConfig(data, 3, 0);  // k < 1
    ASSERT_TRUE(cfg.ok());
    EXPECT_FALSE(MakeMaxEntropyAnonymizer(*cfg)
                     ->Anonymize(data.split.d1)
                     .ok());
  }
  {
    auto cfg = MakeAdultAnonConfig(data, 3, 4);
    ASSERT_TRUE(cfg.ok());
    cfg->hierarchies[1] = cfg->hierarchies[0];  // kind mismatch (numeric VGH
                                                // for categorical attribute)
    EXPECT_FALSE(MakeMaxEntropyAnonymizer(*cfg)
                     ->Anonymize(data.split.d1)
                     .ok());
  }
}

TEST(MetricsTest, BasicAccounting) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 16);
  ASSERT_TRUE(cfg.ok());
  auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());

  EXPECT_EQ(DistinctSequences(*anon), anon->NumSequences());
  EXPECT_NEAR(AverageGroupSize(*anon) * static_cast<double>(anon->NumSequences()),
              static_cast<double>(anon->num_rows), 1e-6);
  // Discernibility is at least k * N (every row is in a group of >= k).
  EXPECT_GE(DiscernibilityCost(*anon), 16 * anon->num_rows);
  // l-diversity of income is at least 1 and at most 2 (binary class).
  int64_t l = LDiversity(data.split.d1, *anon, data.schema->FindIndex("income"));
  EXPECT_GE(l, 1);
  EXPECT_LE(l, 2);
}

TEST(LDiversityTest, ConstraintIsEnforcedWhenRequested) {
  const auto& data = AnonFixture::Data();
  int income = data.schema->FindIndex("income");
  ASSERT_GE(income, 0);
  auto cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  cfg->l_diversity = 2;
  cfg->sensitive_attr = income;
  auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok()) << anon.status().ToString();
  EXPECT_TRUE(anon->IsKAnonymous(8));
  EXPECT_GE(LDiversity(data.split.d1, *anon, income), 2);
}

TEST(LDiversityTest, ConstraintCostsGranularity) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  auto plain = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(plain.ok());
  cfg->l_diversity = 2;
  cfg->sensitive_attr = data.schema->FindIndex("income");
  auto diverse = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(diverse.ok());
  EXPECT_LE(diverse->NumSequences(), plain->NumSequences());
}

TEST(LDiversityTest, NeedsCategoricalSensitiveAttr) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  cfg->l_diversity = 2;
  cfg->sensitive_attr = -1;
  EXPECT_FALSE(MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1).ok());
  cfg->sensitive_attr = data.schema->FindIndex("age");  // numeric
  EXPECT_FALSE(MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1).ok());
}

TEST(MetricsTest, GeneralizationLossOrderedByK) {
  // Loss is 0 at k=1 (fully specific), grows with k, and reaches ~1 at k=n.
  const auto& data = AnonFixture::Data();
  double prev = -1;
  for (int64_t k : std::vector<int64_t>{1, 8, 64, data.split.d1.num_rows()}) {
    auto cfg = MakeAdultAnonConfig(data, 5, k);
    ASSERT_TRUE(cfg.ok());
    auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
    ASSERT_TRUE(anon.ok());
    auto loss = AverageGeneralizationLoss(*anon, cfg->hierarchies);
    ASSERT_TRUE(loss.ok());
    EXPECT_GE(*loss, prev - 1e-9) << k;
    EXPECT_GE(*loss, 0.0);
    EXPECT_LE(*loss, 1.0);
    if (k == 1) {
      EXPECT_NEAR(*loss, 0.0, 1e-9);
    }
    if (k == data.split.d1.num_rows()) {
      EXPECT_GT(*loss, 0.9);
    }
    prev = *loss;
  }
}

TEST(MetricsTest, GeneralizationLossValidatesInput) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 5, 8);
  ASSERT_TRUE(cfg.ok());
  auto anon = MakeMaxEntropyAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());
  std::vector<VghPtr> too_few(cfg->hierarchies.begin(),
                              cfg->hierarchies.end() - 1);
  EXPECT_FALSE(AverageGeneralizationLoss(*anon, too_few).ok());
}

TEST(MondrianTest, BoxesAreTight) {
  const auto& data = AnonFixture::Data();
  auto cfg = MakeAdultAnonConfig(data, 4, 8);
  ASSERT_TRUE(cfg.ok());
  auto anon = MakeMondrianAnonymizer(*cfg)->Anonymize(data.split.d1);
  ASSERT_TRUE(anon.ok());
  // Tightness: each box's bounds are attained by some row.
  for (const auto& g : anon->groups) {
    for (size_t q = 0; q < g.seq.size(); ++q) {
      const GenValue& gv = g.seq[q];
      bool lo_hit = false, hi_hit = false;
      for (int64_t row : g.rows) {
        const Value& v = data.split.d1.at(row, cfg->qid_attrs[q]);
        if (gv.type == AttrType::kNumeric) {
          lo_hit |= v.num() == gv.num_lo;
          hi_hit |= v.num() == gv.num_hi;
        } else {
          lo_hit |= v.category() == gv.cat_lo;
          hi_hit |= v.category() == gv.cat_hi - 1;
        }
      }
      EXPECT_TRUE(lo_hit && hi_hit);
    }
  }
}

}  // namespace
}  // namespace hprl
