#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "adult/adult.h"
#include "common/random.h"
#include "linkage/distance.h"
#include "linkage/slack.h"

namespace hprl {
namespace {

AttrRule CatRule(double theta = 0.5) {
  AttrRule r;
  r.type = AttrType::kCategorical;
  r.theta = theta;
  return r;
}

AttrRule NumRule(double theta, double norm) {
  AttrRule r;
  r.type = AttrType::kNumeric;
  r.theta = theta;
  r.norm = norm;
  return r;
}

AttrRule TextRule(double theta) {
  AttrRule r;
  r.type = AttrType::kText;
  r.theta = theta;
  return r;
}

TEST(CategoricalSlackTest, DisjointRangesAreDistanceOne) {
  auto v = GenValue::CategoryRange(0, 2);
  auto w = GenValue::CategoryRange(2, 5);
  SlackBounds sb = AttrSlack(v, w, CatRule());
  EXPECT_DOUBLE_EQ(sb.inf, 1.0);
  EXPECT_DOUBLE_EQ(sb.sup, 1.0);
}

TEST(CategoricalSlackTest, OverlapGivesZeroInfimum) {
  auto v = GenValue::CategoryRange(0, 3);
  auto w = GenValue::CategoryRange(2, 5);
  SlackBounds sb = AttrSlack(v, w, CatRule());
  EXPECT_DOUBLE_EQ(sb.inf, 0.0);
  EXPECT_DOUBLE_EQ(sb.sup, 1.0);
}

TEST(CategoricalSlackTest, SameSingletonIsExactZero) {
  auto v = GenValue::CategorySingleton(4);
  auto w = GenValue::CategorySingleton(4);
  SlackBounds sb = AttrSlack(v, w, CatRule());
  EXPECT_DOUBLE_EQ(sb.inf, 0.0);
  EXPECT_DOUBLE_EQ(sb.sup, 0.0);
}

TEST(CategoricalSlackTest, SingletonInsideRangeIsUnknownish) {
  auto v = GenValue::CategorySingleton(4);
  auto w = GenValue::CategoryRange(0, 7);
  SlackBounds sb = AttrSlack(v, w, CatRule());
  EXPECT_DOUBLE_EQ(sb.inf, 0.0);
  EXPECT_DOUBLE_EQ(sb.sup, 1.0);
}

TEST(NumericSlackTest, GapAndFarthest) {
  auto v = GenValue::NumericInterval(0, 10);
  auto w = GenValue::NumericInterval(30, 50);
  SlackBounds sb = AttrSlack(v, w, NumRule(0.1, 100));
  EXPECT_DOUBLE_EQ(sb.inf, 0.2);  // gap 20 / 100
  EXPECT_DOUBLE_EQ(sb.sup, 0.5);  // farthest 50 / 100
}

TEST(NumericSlackTest, OverlappingIntervals) {
  auto v = GenValue::NumericInterval(0, 40);
  auto w = GenValue::NumericInterval(30, 50);
  SlackBounds sb = AttrSlack(v, w, NumRule(0.1, 100));
  EXPECT_DOUBLE_EQ(sb.inf, 0.0);
  EXPECT_DOUBLE_EQ(sb.sup, 0.5);
}

TEST(NumericSlackTest, ExactValues) {
  auto v = GenValue::NumericExact(35);
  auto w = GenValue::NumericExact(36);
  SlackBounds sb = AttrSlack(v, w, NumRule(0.2, 98));
  EXPECT_NEAR(sb.inf, 1.0 / 98, 1e-12);
  EXPECT_NEAR(sb.sup, 1.0 / 98, 1e-12);
}

TEST(NumericSlackTest, SlackBoundsAreSoundForSampledValues) {
  // Property: for values x in v and y in w, inf <= |x-y|/norm <= sup.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    double a1 = rng.NextDouble(0, 50), b1 = a1 + rng.NextDouble(0, 30);
    double a2 = rng.NextDouble(0, 50), b2 = a2 + rng.NextDouble(0, 30);
    auto v = GenValue::NumericInterval(a1, b1);
    auto w = GenValue::NumericInterval(a2, b2);
    AttrRule rule = NumRule(0.1, 80);
    SlackBounds sb = AttrSlack(v, w, rule);
    for (int s = 0; s < 20; ++s) {
      double x = rng.NextDouble(a1, b1);
      double y = rng.NextDouble(a2, b2);
      double d = std::fabs(x - y) / rule.norm;
      EXPECT_GE(d, sb.inf - 1e-9);
      EXPECT_LE(d, sb.sup + 1e-9);
    }
  }
}

TEST(TextSlackTest, ExactPairIsEditDistance) {
  auto v = GenValue::TextPrefix("smith", true);
  auto w = GenValue::TextPrefix("smyth", true);
  SlackBounds sb = AttrSlack(v, w, TextRule(1));
  EXPECT_DOUBLE_EQ(sb.inf, 1.0);
  EXPECT_DOUBLE_EQ(sb.sup, 1.0);
}

TEST(TextSlackTest, PrefixSupremumIsInfinite) {
  auto v = GenValue::TextPrefix("smi", false);
  auto w = GenValue::TextPrefix("smi", false);
  SlackBounds sb = AttrSlack(v, w, TextRule(1));
  EXPECT_DOUBLE_EQ(sb.inf, 0.0);
  EXPECT_TRUE(std::isinf(sb.sup));
}

TEST(TextSlackTest, DivergentPrefixesBlockable) {
  auto v = GenValue::TextPrefix("xx", false);
  auto w = GenValue::TextPrefix("yyyy", false);
  SlackBounds sb = AttrSlack(v, w, TextRule(1));
  EXPECT_GE(sb.inf, 2.0);  // at least two substitutions, whatever is appended
}

// ------------------------------------------------------- decision rule

class WorkedExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto edu = adult::MakeExampleEducationVgh();
    ASSERT_TRUE(edu.ok());
    edu_ = std::make_shared<const Vgh>(std::move(edu).value());
    auto hrs = adult::MakeWorkHrsVgh();
    ASSERT_TRUE(hrs.ok());
    hrs_ = std::make_shared<const Vgh>(std::move(hrs).value());

    AttrRule a1;
    a1.attr_index = 0;
    a1.type = AttrType::kCategorical;
    a1.theta = 0.5;  // paper θ1
    a1.name = "education";
    AttrRule a2;
    a2.attr_index = 1;
    a2.type = AttrType::kNumeric;
    a2.theta = 0.2;  // paper θ2
    a2.norm = hrs_->RootRange();  // 98 -> threshold 19.6
    a2.name = "workhrs";
    rule_.attrs = {a1, a2};
  }

  GenValue Edu(const std::string& label) {
    int node = edu_->FindByLabel(label);
    EXPECT_GE(node, 0) << label;
    return edu_->Gen(node);
  }

  VghPtr edu_;
  VghPtr hrs_;
  MatchRule rule_;
};

TEST_F(WorkedExampleTest, R1S5IsMismatch) {
  // gen(r1) = (Masters, [35-37)), gen(s5) = (Senior Sec., [1-35)).
  GenSequence r1 = {Edu("Masters"), GenValue::NumericInterval(35, 37)};
  GenSequence s5 = {Edu("Senior Sec."), GenValue::NumericInterval(1, 35)};
  EXPECT_EQ(SlackDecide(r1, s5, rule_), PairLabel::kMismatch);
}

TEST_F(WorkedExampleTest, R1S1IsMatch) {
  // Both (Masters, [35-37)): any two values are < 19.6 apart.
  GenSequence r1 = {Edu("Masters"), GenValue::NumericInterval(35, 37)};
  GenSequence s1 = {Edu("Masters"), GenValue::NumericInterval(35, 37)};
  EXPECT_EQ(SlackDecide(r1, s1, rule_), PairLabel::kMatch);
}

TEST_F(WorkedExampleTest, R1S3IsUnknown) {
  // gen(s3) = (ANY, [1-35)): education could match or not (paper §III).
  GenSequence r1 = {Edu("Masters"), GenValue::NumericInterval(35, 37)};
  GenSequence s3 = {Edu("ANY"), GenValue::NumericInterval(1, 35)};
  EXPECT_EQ(SlackDecide(r1, s3, rule_), PairLabel::kUnknown);
}

TEST_F(WorkedExampleTest, R4S5IsUnknown) {
  // (Secondary, [1-35)) vs (Senior Sec., [1-35)): specSets intersect on
  // {11th, 12th} and hours may differ by up to 34 > 19.6.
  GenSequence r4 = {Edu("Secondary"), GenValue::NumericInterval(1, 35)};
  GenSequence s5 = {Edu("Senior Sec."), GenValue::NumericInterval(1, 35)};
  EXPECT_EQ(SlackDecide(r4, s5, rule_), PairLabel::kUnknown);
}

TEST_F(WorkedExampleTest, R4S1IsMismatch) {
  GenSequence r4 = {Edu("Secondary"), GenValue::NumericInterval(1, 35)};
  GenSequence s1 = {Edu("Masters"), GenValue::NumericInterval(35, 37)};
  EXPECT_EQ(SlackDecide(r4, s1, rule_), PairLabel::kMismatch);
}

TEST_F(WorkedExampleTest, DecisionIsSoundOnConcretePairs) {
  // Draw concrete records consistent with generalizations; labels must hold.
  struct Case {
    GenSequence gen;
    std::vector<std::pair<std::string, double>> concretes;
  };
  // (Masters, [35-37)) admits exactly Masters x {35, 36}.
  GenSequence gen_m = {Edu("Masters"), GenValue::NumericInterval(35, 37)};
  GenSequence gen_ss = {Edu("Senior Sec."), GenValue::NumericInterval(1, 35)};
  ASSERT_EQ(SlackDecide(gen_m, gen_ss, rule_), PairLabel::kMismatch);
  // All concrete pairs must indeed mismatch on education.
  for (const char* e2 : {"11th", "12th"}) {
    double d = HammingDistance(
        edu_->node(edu_->FindByLabel("Masters")).leaf_begin,
        edu_->node(edu_->FindByLabel(e2)).leaf_begin);
    EXPECT_GT(d, rule_.attrs[0].theta);
  }
}

// ------------------------------------------------------- memoized table

TEST_F(WorkedExampleTest, SlackTableMatchesSlackDecide) {
  // The paper's §III sequences, with duplicates so interning has work to do.
  std::vector<GenSequence> seqs_r = {
      {Edu("Masters"), GenValue::NumericInterval(35, 37)},
      {Edu("Secondary"), GenValue::NumericInterval(1, 35)},
      {Edu("Masters"), GenValue::NumericInterval(1, 35)},
      {Edu("Secondary"), GenValue::NumericInterval(1, 35)},  // dup of [1]
  };
  std::vector<GenSequence> seqs_s = {
      {Edu("Masters"), GenValue::NumericInterval(35, 37)},
      {Edu("ANY"), GenValue::NumericInterval(1, 35)},
      {Edu("Senior Sec."), GenValue::NumericInterval(1, 35)},
      {Edu("ANY"), GenValue::NumericInterval(1, 35)},  // dup of [1]
  };
  std::vector<const GenSequence*> ptrs_r, ptrs_s;
  for (const auto& s : seqs_r) ptrs_r.push_back(&s);
  for (const auto& s : seqs_s) ptrs_s.push_back(&s);

  SlackTable table(ptrs_r, ptrs_s, rule_);
  int64_t lookups = 0;
  for (size_t r = 0; r < seqs_r.size(); ++r) {
    for (size_t s = 0; s < seqs_s.size(); ++s) {
      EXPECT_EQ(table.Decide(r, s, &lookups),
                SlackDecide(seqs_r[r], seqs_s[s], rule_))
          << r << "," << s;
    }
  }
  EXPECT_GT(lookups, 0);
  // Education: 2 distinct R values x 3 distinct S values; numeric: 2 x 2.
  // 2*3 + 2*2 = 10 computed entries, far fewer than the 4*4*2 = 32 AttrSlack
  // calls of the direct sweep.
  EXPECT_EQ(table.entries_computed(), 10);
  EXPECT_LT(table.entries_computed(), lookups);
}

TEST(SlackTableRandomTest, AgreesWithSlackDecideOnRandomNumericSequences) {
  AttrRule num1 = NumRule(0.1, 100);
  num1.attr_index = 0;
  AttrRule num2 = NumRule(0.3, 100);
  num2.attr_index = 1;
  MatchRule rule;
  rule.attrs = {num1, num2};

  Rng rng(123);
  auto random_seqs = [&](int count) {
    std::vector<GenSequence> seqs;
    for (int i = 0; i < count; ++i) {
      GenSequence seq;
      for (int a = 0; a < 2; ++a) {
        // Coarse grid so values repeat across sequences.
        double lo = 10 * static_cast<int>(rng.NextDouble(0, 8));
        double hi = lo + 10 * (1 + static_cast<int>(rng.NextDouble(0, 3)));
        seq.push_back(GenValue::NumericInterval(lo, hi));
      }
      seqs.push_back(std::move(seq));
    }
    return seqs;
  };
  auto seqs_r = random_seqs(30);
  auto seqs_s = random_seqs(25);
  std::vector<const GenSequence*> ptrs_r, ptrs_s;
  for (const auto& s : seqs_r) ptrs_r.push_back(&s);
  for (const auto& s : seqs_s) ptrs_s.push_back(&s);

  SlackTable table(ptrs_r, ptrs_s, rule);
  for (size_t r = 0; r < seqs_r.size(); ++r) {
    for (size_t s = 0; s < seqs_s.size(); ++s) {
      EXPECT_EQ(table.Decide(r, s), SlackDecide(seqs_r[r], seqs_s[s], rule))
          << r << "," << s;
    }
  }
  EXPECT_LT(table.entries_computed(),
            static_cast<int64_t>(2 * seqs_r.size() * seqs_s.size()));
}

}  // namespace
}  // namespace hprl
