#include <gtest/gtest.h>

#include "adult/adult.h"
#include "anon/anonymizer.h"
#include "core/blocking.h"
#include "core/heuristics.h"
#include "data/partition.h"

namespace hprl {
namespace {

/// The paper's §III worked example: relations R (Table I) and S (Table II)
/// with their 3- and 2-anonymous generalizations, θ1 = 0.5 (Hamming on
/// Education), θ2 = 0.2 (Euclidean on WorkHrs, normFactor 98).
class WorkedExampleBlocking : public ::testing::Test {
 protected:
  void SetUp() override {
    auto edu = adult::MakeExampleEducationVgh();
    ASSERT_TRUE(edu.ok());
    edu_ = std::make_shared<const Vgh>(std::move(edu).value());
    auto hrs = adult::MakeWorkHrsVgh();
    ASSERT_TRUE(hrs.ok());
    hrs_ = std::make_shared<const Vgh>(std::move(hrs).value());

    AttrRule a1;
    a1.attr_index = 0;
    a1.type = AttrType::kCategorical;
    a1.theta = 0.5;
    AttrRule a2;
    a2.attr_index = 1;
    a2.type = AttrType::kNumeric;
    a2.theta = 0.2;
    a2.norm = hrs_->RootRange();
    rule_.attrs = {a1, a2};

    // R' = { r1..r3 -> (Masters, [35-37)), r4..r6 -> (Secondary, [1-35)) }
    anon_r_.num_rows = 6;
    anon_r_.groups.push_back(
        {{Gen("Masters"), GenValue::NumericInterval(35, 37)}, {0, 1, 2}});
    anon_r_.groups.push_back(
        {{Gen("Secondary"), GenValue::NumericInterval(1, 35)}, {3, 4, 5}});

    // S' = { s1,s2 -> (Masters, [35-37)), s3,s4 -> (ANY, [1-35)),
    //        s5,s6 -> (Senior Sec., [1-35)) }
    anon_s_.num_rows = 6;
    anon_s_.groups.push_back(
        {{Gen("Masters"), GenValue::NumericInterval(35, 37)}, {0, 1}});
    anon_s_.groups.push_back(
        {{Gen("ANY"), GenValue::NumericInterval(1, 35)}, {2, 3}});
    anon_s_.groups.push_back(
        {{Gen("Senior Sec."), GenValue::NumericInterval(1, 35)}, {4, 5}});
  }

  GenValue Gen(const std::string& label) {
    int node = edu_->FindByLabel(label);
    EXPECT_GE(node, 0) << label;
    return edu_->Gen(node);
  }

  VghPtr edu_;
  VghPtr hrs_;
  MatchRule rule_;
  AnonymizedTable anon_r_;
  AnonymizedTable anon_s_;
};

TEST_F(WorkedExampleBlocking, PaperCounts12N6M18U) {
  auto blocking = RunBlocking(anon_r_, anon_s_, rule_);
  ASSERT_TRUE(blocking.ok()) << blocking.status().ToString();
  EXPECT_EQ(blocking->total_pairs, 36);
  EXPECT_EQ(blocking->mismatched_pairs, 12);
  EXPECT_EQ(blocking->matched_pairs, 6);
  EXPECT_EQ(blocking->unknown_pairs, 18);
  // Blocking efficiency: 18/36 = 50% (paper §VI's example).
  EXPECT_DOUBLE_EQ(blocking->BlockingEfficiency(), 0.5);
}

TEST_F(WorkedExampleBlocking, MatchGroupIsMastersByMasters) {
  auto blocking = RunBlocking(anon_r_, anon_s_, rule_);
  ASSERT_TRUE(blocking.ok());
  ASSERT_EQ(blocking->matches.size(), 1u);
  EXPECT_EQ(blocking->matches[0].group_r, 0);
  EXPECT_EQ(blocking->matches[0].group_s, 0);
  EXPECT_EQ(blocking->matches[0].pair_count, 6);
}

TEST_F(WorkedExampleBlocking, UnknownGroupsAreTheExpectedThree) {
  auto blocking = RunBlocking(anon_r_, anon_s_, rule_);
  ASSERT_TRUE(blocking.ok());
  // U: (r1-3) x (s3,s4); (r4-6) x (s3,s4); (r4-6) x (s5,s6).
  ASSERT_EQ(blocking->unknown.size(), 3u);
  int64_t u_pairs = 0;
  for (const auto& sp : blocking->unknown) u_pairs += sp.pair_count;
  EXPECT_EQ(u_pairs, 18);
}

TEST_F(WorkedExampleBlocking, SequenceLengthMismatchRejected) {
  anon_r_.groups[0].seq.pop_back();
  EXPECT_FALSE(RunBlocking(anon_r_, anon_s_, rule_).ok());
}

TEST_F(WorkedExampleBlocking, HeuristicsOrderUnknownGroups) {
  auto blocking = RunBlocking(anon_r_, anon_s_, rule_);
  ASSERT_TRUE(blocking.ok());
  Rng rng(1);
  for (SelectionHeuristic h :
       {SelectionHeuristic::kMinFirst, SelectionHeuristic::kMaxLast,
        SelectionHeuristic::kMinAvgFirst, SelectionHeuristic::kRandom}) {
    auto order =
        OrderUnknownPairs(*blocking, anon_r_, anon_s_, rule_, h, rng);
    ASSERT_EQ(order.size(), blocking->unknown.size());
    std::set<size_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size()) << HeuristicName(h);
  }
}

TEST_F(WorkedExampleBlocking, MinAvgPrefersMastersAnyOverSecondaryAny) {
  // (Masters,[35-37)) vs (ANY,[1-35)) has avg expected distance dominated by
  // the numeric gap; (Secondary,[1-35)) vs (Senior Sec.,[1-35)) overlaps on
  // both attributes and should be preferred (smaller expected distances).
  auto blocking = RunBlocking(anon_r_, anon_s_, rule_);
  ASSERT_TRUE(blocking.ok());
  Rng rng(1);
  auto order = OrderUnknownPairs(*blocking, anon_r_, anon_s_, rule_,
                                 SelectionHeuristic::kMinAvgFirst, rng);
  const SequencePair& first = blocking->unknown[order.front()];
  // First choice pairs (Secondary,[1-35)) with (Senior Sec.,[1-35)).
  EXPECT_EQ(first.group_r, 1);
  EXPECT_EQ(first.group_s, 2);
}

TEST(ParallelBlockingTest, IdenticalToSequential) {
  // Random-ish releases with enough groups that every thread gets work.
  auto h = adult::BuildAdultHierarchies();
  Table source = adult::GenerateAdult(1200, 21, h);
  Rng rng(3);
  auto split = SplitForLinkage(source, rng);
  ASSERT_TRUE(split.ok());
  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) vghs.push_back(h.ByName(n));
  auto rule = MakeUniformRule(source.schema(), adult::AdultQidNames(), vghs,
                              5, 0.05);
  ASSERT_TRUE(rule.ok());

  AnonymizerConfig cfg;
  cfg.k = 4;
  for (int i = 0; i < 5; ++i) {
    cfg.qid_attrs.push_back(source.schema()->FindIndex(
        adult::AdultQidNames()[i]));
    cfg.hierarchies.push_back(vghs[i]);
  }
  auto anon_r = MakeMaxEntropyAnonymizer(cfg)->Anonymize(split->d1);
  auto anon_s = MakeMaxEntropyAnonymizer(cfg)->Anonymize(split->d2);
  ASSERT_TRUE(anon_r.ok() && anon_s.ok());

  auto seq = RunBlocking(*anon_r, *anon_s, *rule, 1);
  ASSERT_TRUE(seq.ok());
  for (int threads : {2, 3, 8}) {
    auto par = RunBlocking(*anon_r, *anon_s, *rule, threads);
    ASSERT_TRUE(par.ok()) << threads;
    EXPECT_EQ(par->matched_pairs, seq->matched_pairs);
    EXPECT_EQ(par->mismatched_pairs, seq->mismatched_pairs);
    EXPECT_EQ(par->unknown_pairs, seq->unknown_pairs);
    ASSERT_EQ(par->unknown.size(), seq->unknown.size());
    for (size_t i = 0; i < seq->unknown.size(); ++i) {
      EXPECT_EQ(par->unknown[i].group_r, seq->unknown[i].group_r);
      EXPECT_EQ(par->unknown[i].group_s, seq->unknown[i].group_s);
    }
    ASSERT_EQ(par->matches.size(), seq->matches.size());
  }
  EXPECT_FALSE(RunBlocking(*anon_r, *anon_s, *rule, 0).ok());
}

TEST_F(WorkedExampleBlocking, SlackCacheCountersPublished) {
  obs::MetricsRegistry registry;
  auto blocking = RunBlocking(anon_r_, anon_s_, rule_, 1, &registry);
  ASSERT_TRUE(blocking.ok());
  auto counters = registry.CounterValues();
  // 2 R-groups x 3 S-groups x 2 attrs = 12 lookups minus early mismatch
  // exits; every lookup hits the memo table, which computed at most
  // |V1^R|·|V1^S| + |V2^R|·|V2^S| = 2*3 + 2*2 = 10 entries.
  EXPECT_GT(counters.at("blocking.slack_cache_hits"), 0);
  EXPECT_LE(counters.at("blocking.slack_cache_misses"), 10);
  EXPECT_EQ(counters.at("blocking.pairs_u"), 18);
}

TEST(ParallelBlockingTest, WorkStealingHandlesSkewedGroupCounts) {
  // One giant education range plus many singletons — under a static range
  // split most threads would finish instantly; chunked stealing must still
  // produce the sequential result bit for bit.
  AttrRule a;
  a.attr_index = 0;
  a.type = AttrType::kCategorical;
  a.theta = 0.3;
  MatchRule rule;
  rule.attrs = {a};

  AnonymizedTable anon_r, anon_s;
  const int kGroups = 97;  // not a multiple of any thread count below
  anon_r.num_rows = kGroups;
  anon_s.num_rows = kGroups;
  for (int i = 0; i < kGroups; ++i) {
    anon_r.groups.push_back(
        {{GenValue::CategoryRange(i % 11, i % 11 + 1 + i % 3)}, {i}});
    anon_s.groups.push_back(
        {{GenValue::CategoryRange((i * 7) % 13, (i * 7) % 13 + 1)}, {i}});
  }

  auto seq = RunBlocking(anon_r, anon_s, rule, 1);
  ASSERT_TRUE(seq.ok());
  for (int threads : {2, 5, 16}) {
    auto par = RunBlocking(anon_r, anon_s, rule, threads);
    ASSERT_TRUE(par.ok()) << threads;
    EXPECT_EQ(par->matched_pairs, seq->matched_pairs) << threads;
    EXPECT_EQ(par->mismatched_pairs, seq->mismatched_pairs) << threads;
    EXPECT_EQ(par->unknown_pairs, seq->unknown_pairs) << threads;
    ASSERT_EQ(par->unknown.size(), seq->unknown.size()) << threads;
    for (size_t i = 0; i < seq->unknown.size(); ++i) {
      EXPECT_EQ(par->unknown[i].group_r, seq->unknown[i].group_r);
      EXPECT_EQ(par->unknown[i].group_s, seq->unknown[i].group_s);
    }
    ASSERT_EQ(par->matches.size(), seq->matches.size()) << threads;
    for (size_t i = 0; i < seq->matches.size(); ++i) {
      EXPECT_EQ(par->matches[i].group_r, seq->matches[i].group_r);
      EXPECT_EQ(par->matches[i].group_s, seq->matches[i].group_s);
    }
  }
}

TEST(HeuristicNamesTest, ParseRoundTrip) {
  for (SelectionHeuristic h :
       {SelectionHeuristic::kMinFirst, SelectionHeuristic::kMaxLast,
        SelectionHeuristic::kMinAvgFirst, SelectionHeuristic::kRandom}) {
    auto parsed = ParseHeuristic(HeuristicName(h));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, h);
  }
  EXPECT_FALSE(ParseHeuristic("bogus").ok());
}

}  // namespace
}  // namespace hprl
