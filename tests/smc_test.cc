#include <gtest/gtest.h>

#include "smc/channel.h"
#include "smc/network.h"
#include "smc/parties.h"
#include "smc/protocol.h"
#include "smc/smc_oracle.h"

namespace hprl::smc {
namespace {

using crypto::BigInt;

// ---------------------------------------------------------------- channel

TEST(MessageBusTest, FifoPerRecipientAndStats) {
  MessageBus bus;
  bus.Send({"a", "b", "t1", {1, 2, 3}});
  bus.Send({"a", "b", "t2", {4}});
  bus.Send({"b", "a", "t3", {}});

  auto m1 = bus.Receive("b");
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->tag, "t1");
  auto m2 = bus.Receive("b");
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->tag, "t2");
  EXPECT_FALSE(bus.Receive("b").ok());

  EXPECT_EQ(bus.total_messages(), 3);
  EXPECT_EQ(bus.total_bytes(), 4);
  auto it = bus.links().find({"a", "b"});
  ASSERT_NE(it, bus.links().end());
  EXPECT_EQ(it->second.messages, 2);
  EXPECT_EQ(it->second.bytes, 4);
}

TEST(MessageBusTest, ExpectEnforcesTag) {
  MessageBus bus;
  bus.Send({"a", "b", "right", {}});
  bus.Send({"a", "b", "wrong", {}});
  EXPECT_TRUE(bus.Expect("b", "right").ok());
  EXPECT_FALSE(bus.Expect("b", "right").ok());
}

TEST(SerializationTest, BigIntRoundTripsThroughPayload) {
  std::vector<uint8_t> buf;
  auto big = BigInt::FromString("123456789123456789123456789");
  ASSERT_TRUE(big.ok());
  AppendBigInt(*big, &buf);
  AppendBigInt(BigInt(0), &buf);
  AppendBigInt(BigInt(255), &buf);

  size_t off = 0;
  auto x = ConsumeBigInt(buf, &off);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, *big);
  auto y = ConsumeBigInt(buf, &off);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, BigInt(0));
  auto z = ConsumeBigInt(buf, &off);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(*z, BigInt(255));
  EXPECT_EQ(off, buf.size());
  EXPECT_FALSE(ConsumeBigInt(buf, &off).ok());  // exhausted
}

TEST(SerializationTest, TruncationDetected) {
  std::vector<uint8_t> buf;
  AppendBigInt(BigInt(1234567), &buf);
  buf.pop_back();
  size_t off = 0;
  EXPECT_FALSE(ConsumeBigInt(buf, &off).ok());
}

// ---------------------------------------------------------------- protocol

MatchRule MixedRule() {
  MatchRule rule;
  AttrRule cat;
  cat.attr_index = 0;
  cat.type = AttrType::kCategorical;
  cat.theta = 0.5;
  AttrRule num;
  num.attr_index = 1;
  num.type = AttrType::kNumeric;
  num.theta = 0.1;
  num.norm = 100;  // |x-y| <= 10 matches
  rule.attrs = {cat, num};
  return rule;
}

SmcConfig FastConfig(bool reveal = true) {
  SmcConfig cfg;
  cfg.key_bits = 256;  // small key: fast tests; 1024 covered separately
  cfg.test_seed = 4242;
  cfg.reveal_distances = reveal;
  return cfg;
}

Record Rec(int32_t cat, double num) {
  return {Value::Category(cat), Value::Numeric(num)};
}

class ProtocolTest : public ::testing::TestWithParam<bool> {};

TEST_P(ProtocolTest, AgreesWithPlaintextRule) {
  MatchRule rule = MixedRule();
  SecureRecordComparator cmp(FastConfig(GetParam()), rule);
  ASSERT_TRUE(cmp.Init().ok());

  struct Case {
    Record a, b;
  };
  std::vector<Case> cases = {
      {Rec(1, 50), Rec(1, 55)},   // match
      {Rec(1, 50), Rec(1, 60)},   // boundary: |d|=10 <= 10 -> match
      {Rec(1, 50), Rec(1, 61)},   // numeric fail
      {Rec(1, 50), Rec(2, 50)},   // categorical fail
      {Rec(3, 1), Rec(3, 99)},    // numeric fail big
      {Rec(0, 42), Rec(0, 42)},   // identical
  };
  for (const auto& c : cases) {
    auto secure = cmp.Compare(c.a, c.b);
    ASSERT_TRUE(secure.ok()) << secure.status().ToString();
    EXPECT_EQ(*secure, RecordsMatch(c.a, c.b, rule))
        << c.a[0].category() << "," << c.a[1].num() << " vs "
        << c.b[0].category() << "," << c.b[1].num()
        << " reveal=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RevealAndBlinded, ProtocolTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "RevealDistances"
                                             : "BlindedComparison";
                         });

TEST(ProtocolCostTest, CountsOperationsAndBytes) {
  MatchRule rule = MixedRule();
  SecureRecordComparator cmp(FastConfig(), rule);
  ASSERT_TRUE(cmp.Init().ok());
  int64_t bytes_after_init = cmp.bus().total_bytes();

  ASSERT_TRUE(cmp.Compare(Rec(1, 50), Rec(1, 55)).ok());
  const SmcCosts& costs = cmp.costs();
  EXPECT_EQ(costs.invocations, 1);
  EXPECT_EQ(costs.attr_comparisons, 2);       // both attrs evaluated (match)
  EXPECT_EQ(costs.encryptions, 2 * 3);        // 3 per attribute
  EXPECT_EQ(costs.decryptions, 2);
  EXPECT_GT(cmp.bus().total_bytes(), bytes_after_init);

  // A categorical mismatch short-circuits: only one attribute compared.
  ASSERT_TRUE(cmp.Compare(Rec(1, 50), Rec(2, 50)).ok());
  EXPECT_EQ(cmp.costs().invocations, 2);
  EXPECT_EQ(cmp.costs().attr_comparisons, 3);
}

TEST(ProtocolTest, VacuousCategoricalThresholdSkipsCrypto) {
  MatchRule rule = MixedRule();
  rule.attrs[0].theta = 1.0;  // Hamming <= 1 always
  SecureRecordComparator cmp(FastConfig(), rule);
  ASSERT_TRUE(cmp.Init().ok());
  auto r = cmp.Compare(Rec(1, 50), Rec(2, 50));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);  // categories differ but the threshold is vacuous
  EXPECT_EQ(cmp.costs().attr_comparisons, 1);  // only the numeric attribute
}

TEST(ProtocolTest, SecureSquaredDistanceIsExact) {
  SecureRecordComparator cmp(FastConfig(), MixedRule());
  ASSERT_TRUE(cmp.Init().ok());
  auto d = cmp.SecureSquaredDistance(35.0, 36.5);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 2.25, 1e-9);
  auto zero = cmp.SecureSquaredDistance(12.5, 12.5);
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(*zero, 0.0);
}

TEST(ProtocolTest, RequiresInit) {
  SecureRecordComparator cmp(FastConfig(), MixedRule());
  EXPECT_FALSE(cmp.Compare(Rec(1, 1), Rec(1, 1)).ok());
}

TEST(ProtocolTest, TextAttributesUnimplemented) {
  MatchRule rule;
  AttrRule t;
  t.attr_index = 0;
  t.type = AttrType::kText;
  t.theta = 1;
  rule.attrs = {t};
  SecureRecordComparator cmp(FastConfig(), rule);
  ASSERT_TRUE(cmp.Init().ok());
  Record a = {Value::Text("x")};
  Record b = {Value::Text("y")};
  auto r = cmp.Compare(a, b);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(SmcOracleTest, BehavesLikePlaintextOracleWithCosts) {
  MatchRule rule = MixedRule();
  SmcMatchOracle oracle(FastConfig(), rule);
  ASSERT_TRUE(oracle.Init().ok());
  CountingPlaintextOracle reference(rule);

  Record a = Rec(2, 30), b = Rec(2, 33), c = Rec(1, 30);
  EXPECT_EQ(*oracle.Compare(a, b), *reference.Compare(a, b));
  EXPECT_EQ(*oracle.Compare(a, c), *reference.Compare(a, c));
  EXPECT_EQ(oracle.invocations(), 2);
  EXPECT_EQ(reference.invocations(), 2);
  EXPECT_GT(oracle.costs().encryptions, 0);
}

TEST(ProtocolCacheTest, CachedResultsMatchUncachedWithFewerEncryptions) {
  MatchRule rule = MixedRule();
  SmcConfig plain_cfg = FastConfig();
  SmcConfig cached_cfg = FastConfig();
  cached_cfg.cache_ciphertexts = true;
  SecureRecordComparator plain(plain_cfg, rule);
  SecureRecordComparator cached(cached_cfg, rule);
  ASSERT_TRUE(plain.Init().ok());
  ASSERT_TRUE(cached.Init().ok());

  // One R record compared against many S records: Alice's ciphertexts are
  // produced once, Bob's per S record once even when pairs repeat.
  std::vector<Record> s_side = {Rec(1, 50), Rec(1, 55), Rec(2, 50),
                                Rec(1, 70), Rec(1, 55)};
  Record r = Rec(1, 52);
  for (size_t j = 0; j < s_side.size(); ++j) {
    auto expect = plain.CompareRows(0, static_cast<int64_t>(j), r, s_side[j]);
    auto got = cached.CompareRows(0, static_cast<int64_t>(j), r, s_side[j]);
    ASSERT_TRUE(expect.ok() && got.ok());
    EXPECT_EQ(*got, *expect) << j;
  }
  // Repeat the whole sweep: the cached comparator encrypts nothing new.
  int64_t enc_before = cached.costs().encryptions;
  for (size_t j = 0; j < s_side.size(); ++j) {
    ASSERT_TRUE(cached.CompareRows(0, static_cast<int64_t>(j), r, s_side[j])
                    .ok());
  }
  EXPECT_EQ(cached.costs().encryptions, enc_before);
  EXPECT_LT(cached.costs().encryptions, plain.costs().encryptions);
  // Decryptions are per pair either way.
  EXPECT_EQ(cached.costs().decryptions, 2 * plain.costs().decryptions);
}

TEST(ProtocolCacheTest, NegativeIdsBypassTheCache) {
  MatchRule rule = MixedRule();
  SmcConfig cfg = FastConfig();
  cfg.cache_ciphertexts = true;
  SecureRecordComparator cmp(cfg, rule);
  ASSERT_TRUE(cmp.Init().ok());
  ASSERT_TRUE(cmp.Compare(Rec(1, 50), Rec(1, 55)).ok());
  int64_t enc1 = cmp.costs().encryptions;
  ASSERT_TRUE(cmp.Compare(Rec(1, 50), Rec(1, 55)).ok());
  EXPECT_EQ(cmp.costs().encryptions, 2 * enc1);  // nothing was cached
}

// ---------------------------------------------------------------- parties

TEST(PartyTest, HolderRefusesToActWithoutKey) {
  ProtocolParams params;
  params.key_bits = 256;
  DataHolder alice("alice", params, 5);
  MessageBus bus;
  SmcCosts costs;
  EXPECT_EQ(alice.SendAttr(&bus, "bob", BigInt(7), -1, &costs).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      alice.FoldAndForward(&bus, BigInt(7), BigInt(0), -1, &costs).code(),
      StatusCode::kFailedPrecondition);
}

TEST(PartyTest, ThreePartyHandshakeAndOneAttribute) {
  ProtocolParams params;
  params.key_bits = 256;
  QueryingParty qp(params, 41);
  DataHolder alice("alice", params, 42);
  DataHolder bob("bob", params, 43);
  MessageBus bus;
  SmcCosts costs;
  ASSERT_TRUE(qp.PublishKey(&bus, &costs).ok());
  ASSERT_TRUE(alice.ReceiveKey(&bus).ok());
  ASSERT_TRUE(bob.ReceiveKey(&bus).ok());

  // alice x = 10, bob y = 13: (x-y)^2 = 9 is within threshold 9 but
  // outside threshold 8 (boundary semantics are <=).
  ASSERT_TRUE(alice.SendAttr(&bus, "bob", BigInt(10), -1, &costs).ok());
  ASSERT_TRUE(bob.FoldAndForward(&bus, BigInt(13), BigInt(9), -1, &costs).ok());
  auto within = qp.DecideAttr(&bus, BigInt(9), &costs);
  ASSERT_TRUE(within.ok());
  EXPECT_TRUE(*within);
  ASSERT_TRUE(alice.SendAttr(&bus, "bob", BigInt(10), -1, &costs).ok());
  ASSERT_TRUE(bob.FoldAndForward(&bus, BigInt(13), BigInt(8), -1, &costs).ok());
  auto outside = qp.DecideAttr(&bus, BigInt(8), &costs);
  ASSERT_TRUE(outside.ok());
  EXPECT_FALSE(*outside);
}

TEST(PartyTest, ResultAnnouncementRoundTrip) {
  ProtocolParams params;
  params.key_bits = 256;
  QueryingParty qp(params, 44);
  DataHolder alice("alice", params, 45);
  DataHolder bob("bob", params, 46);
  MessageBus bus;
  SmcCosts costs;
  ASSERT_TRUE(qp.PublishKey(&bus, &costs).ok());
  ASSERT_TRUE(alice.ReceiveKey(&bus).ok());
  ASSERT_TRUE(bob.ReceiveKey(&bus).ok());
  ASSERT_TRUE(qp.AnnounceResult(&bus, true).ok());
  auto ra = alice.ReceiveResult(&bus);
  auto rb = bob.ReceiveResult(&bus);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(*ra);
  EXPECT_TRUE(*rb);
  // No further announcement pending.
  EXPECT_FALSE(alice.ReceiveResult(&bus).ok());
}

// ---------------------------------------------------------------- network

TEST(NetworkModelTest, MeasureProducesPositiveTimings) {
  auto t = CryptoTimings::Measure(128, 2);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_GT(t->encrypt_seconds, 0);
  EXPECT_GT(t->decrypt_seconds, 0);
  EXPECT_GT(t->hom_add_seconds, 0);
  EXPECT_GT(t->scalar_mul_seconds, 0);
  // Exponentiation dominates multiplication by orders of magnitude.
  EXPECT_GT(t->encrypt_seconds, 10 * t->hom_add_seconds);
  EXPECT_FALSE(CryptoTimings::Measure(128, 0).ok());
}

TEST(NetworkModelTest, EstimateIsLinearInCounters) {
  CryptoTimings t;
  t.encrypt_seconds = 1e-3;
  t.decrypt_seconds = 2e-3;
  t.hom_add_seconds = 1e-6;
  t.scalar_mul_seconds = 1e-5;
  SmcCosts costs;
  costs.encryptions = 1000;
  costs.decryptions = 500;
  costs.homomorphic_adds = 100;
  costs.scalar_muls = 10;
  NetworkModel local = NetworkModel::Local();
  double base = EstimateSeconds(costs, 0, 0, local, t);
  EXPECT_NEAR(base, 1.0 + 1.0 + 1e-4 + 1e-4, 1e-9);

  // Doubling every counter doubles the compute estimate.
  SmcCosts twice = costs;
  twice += costs;
  EXPECT_NEAR(EstimateSeconds(twice, 0, 0, local, t), 2 * base, 1e-9);

  // WAN latency and bandwidth terms add as expected.
  NetworkModel wan = NetworkModel::Wan();
  double with_net = EstimateSeconds(costs, 1.25e6, 10, wan, t);
  EXPECT_NEAR(with_net, base + 10 * wan.latency_seconds + 1.0, 1e-9);
}

TEST(NetworkModelTest, WanDominatesLanForSameRun) {
  CryptoTimings t;
  t.encrypt_seconds = 1e-3;
  SmcCosts costs;
  costs.encryptions = 10;
  double lan = EstimateSeconds(costs, 100000, 20, NetworkModel::Lan(), t);
  double wan = EstimateSeconds(costs, 100000, 20, NetworkModel::Wan(), t);
  EXPECT_GT(wan, lan);
}

}  // namespace
}  // namespace hprl::smc
