// Release exchange: the paper's data flow with actual file hand-offs.
//
// Each holder anonymizes locally and *publishes* its release — sequences and
// group sizes only, no row ids (anon/release_io.h). The querying party runs
// the blocking step from the published files alone and learns exactly how
// much SMC budget the linkage will need. The holders then run the SMC step
// against their private (row-bearing) releases; the blocking decisions are
// identical on both sides, which this example checks.
//
// Build & run:  ./build/examples/release_exchange

#include <cstdio>
#include <filesystem>

#include "adult/adult.h"
#include "anon/release_io.h"
#include "core/hybrid.h"
#include "data/partition.h"
#include "linkage/oracle.h"

using namespace hprl;

namespace {
void Die(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}
}  // namespace

int main() {
  auto dir = std::filesystem::temp_directory_path() / "hprl_release_exchange";
  std::filesystem::create_directories(dir);

  // --- holders' private side ---
  auto h = adult::BuildAdultHierarchies();
  Table population = adult::GenerateAdult(6000, 99, h);
  Rng rng(3);
  auto split = SplitForLinkage(population, rng);
  if (!split.ok()) Die(split.status());

  AnonymizerConfig cfg;
  cfg.k = 16;
  for (const auto& name : adult::AdultQidNames()) {
    cfg.qid_attrs.push_back(population.schema()->FindIndex(name));
    cfg.hierarchies.push_back(h.ByName(name));
    if (cfg.qid_attrs.size() == 5) break;
  }
  auto anonymizer = MakeMaxEntropyAnonymizer(cfg);
  auto anon_a = anonymizer->Anonymize(split->d1);
  auto anon_b = anonymizer->Anonymize(split->d2);
  if (!anon_a.ok() || !anon_b.ok()) {
    Die(anon_a.ok() ? anon_b.status() : anon_a.status());
  }

  // Publish: write releases WITHOUT row ids; that file is all that leaves
  // each holder before the SMC step.
  std::string pub_a = (dir / "hospital_a.release").string();
  std::string pub_b = (dir / "hospital_b.release").string();
  if (auto s = WriteRelease(*anon_a, /*include_rows=*/false, pub_a); !s.ok())
    Die(s);
  if (auto s = WriteRelease(*anon_b, /*include_rows=*/false, pub_b); !s.ok())
    Die(s);
  std::printf("published releases: %s (%lld sequences), %s (%lld)\n",
              pub_a.c_str(), static_cast<long long>(anon_a->NumSequences()),
              pub_b.c_str(), static_cast<long long>(anon_b->NumSequences()));

  // --- querying party's side: blocking from the files alone ---
  auto loaded_a = LoadRelease(pub_a);
  auto loaded_b = LoadRelease(pub_b);
  if (!loaded_a.ok() || !loaded_b.ok()) {
    Die(loaded_a.ok() ? loaded_b.status() : loaded_a.status());
  }
  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) vghs.push_back(h.ByName(n));
  auto rule = MakeUniformRule(population.schema(), adult::AdultQidNames(),
                              vghs, 5, 0.05);
  if (!rule.ok()) Die(rule.status());
  auto qp_blocking = RunBlocking(*loaded_a, *loaded_b, *rule);
  if (!qp_blocking.ok()) Die(qp_blocking.status());
  std::printf("querying party, from published files: %.2f%% of %lld pairs "
              "decided; %lld unknown pairs to budget for\n",
              100.0 * qp_blocking->BlockingEfficiency(),
              static_cast<long long>(qp_blocking->total_pairs),
              static_cast<long long>(qp_blocking->unknown_pairs));

  // --- holders run the actual protocol with their private releases ---
  HybridConfig hc;
  hc.rule = *rule;
  hc.smc_allowance_fraction = 0.02;
  CountingPlaintextOracle oracle(*rule);
  auto result =
      RunHybridLinkage(split->d1, split->d2, *anon_a, *anon_b, hc, oracle);
  if (!result.ok()) Die(result.status());

  // The published-file view and the private run must agree exactly.
  bool agree = result->blocked_match_pairs == qp_blocking->matched_pairs &&
               result->blocked_mismatch_pairs == qp_blocking->mismatched_pairs &&
               result->unknown_pairs == qp_blocking->unknown_pairs;
  std::printf("private run: %lld links reported (%lld SMC invocations); "
              "blocking decisions %s the published-file view\n",
              static_cast<long long>(result->reported_matches),
              static_cast<long long>(result->smc_processed),
              agree ? "MATCH" : "DIVERGE FROM");

  std::filesystem::remove_all(dir);
  return agree ? 0 : 1;
}
