// Quickstart: the paper's §III worked example, end to end.
//
// Two 6-record relations R (Table I) and S (Table II) over
// (Education, WorkHrs) are linked privately:
//   1. each holder releases a k-anonymous generalization (R' with k=3,
//      S' with k=2, exactly the paper's tables),
//   2. the blocking step labels 12 pairs Mismatch and 6 pairs Match from the
//      anonymized releases alone,
//   3. the 18 Unknown pairs go through the real three-party Paillier-1024
//      protocol, subject to an SMC allowance of 10 pairs (as in the paper's
//      §III discussion); leftovers default to non-match.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "adult/adult.h"
#include "core/blocking.h"
#include "core/hybrid.h"
#include "linkage/ground_truth.h"
#include "smc/smc_oracle.h"

using namespace hprl;

namespace {

void Die(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // --- schema: Education (categorical, Fig. 1 VGH), WorkHrs (numeric) ---
  auto edu_vgh_or = adult::MakeExampleEducationVgh();
  if (!edu_vgh_or.ok()) Die(edu_vgh_or.status());
  auto edu = std::make_shared<const Vgh>(std::move(edu_vgh_or).value());
  auto hrs_vgh_or = adult::MakeWorkHrsVgh();
  if (!hrs_vgh_or.ok()) Die(hrs_vgh_or.status());
  auto hrs = std::make_shared<const Vgh>(std::move(hrs_vgh_or).value());

  auto schema = std::make_shared<Schema>();
  schema->AddCategorical("education", edu->MakeDomain());
  schema->AddNumeric("workhrs");

  auto cat = [&](const char* label) {
    return Value::Category(schema->attribute(0).domain->Find(label));
  };

  // --- Table I (R) and Table II (S) ---
  Table r(schema), s(schema);
  r.AppendUnchecked({cat("Masters"), Value::Numeric(35)});
  r.AppendUnchecked({cat("Masters"), Value::Numeric(36)});
  r.AppendUnchecked({cat("Masters"), Value::Numeric(36)});
  r.AppendUnchecked({cat("9th"), Value::Numeric(28)});
  r.AppendUnchecked({cat("10th"), Value::Numeric(22)});
  r.AppendUnchecked({cat("12th"), Value::Numeric(33)});
  s.AppendUnchecked({cat("Masters"), Value::Numeric(36)});
  s.AppendUnchecked({cat("Masters"), Value::Numeric(35)});
  s.AppendUnchecked({cat("Bachelors"), Value::Numeric(27)});
  s.AppendUnchecked({cat("11th"), Value::Numeric(33)});
  s.AppendUnchecked({cat("11th"), Value::Numeric(22)});
  s.AppendUnchecked({cat("12th"), Value::Numeric(27)});

  // --- the querying party's classifier: θ1 = 0.5 (Hamming), θ2 = 0.2
  //     (Euclidean, normFactor = 98 from the WorkHrs VGH) ---
  MatchRule rule;
  {
    AttrRule a1;
    a1.attr_index = 0;
    a1.type = AttrType::kCategorical;
    a1.theta = 0.5;
    a1.name = "education";
    AttrRule a2;
    a2.attr_index = 1;
    a2.type = AttrType::kNumeric;
    a2.theta = 0.2;
    a2.norm = hrs->RootRange();
    a2.name = "workhrs";
    rule.attrs = {a1, a2};
  }
  std::printf("matching rule: education equal (θ=0.5, Hamming), "
              "|workhrs Δ| <= %.1f (θ=0.2 × %g)\n\n",
              rule.attrs[1].theta * rule.attrs[1].norm, rule.attrs[1].norm);

  // --- the paper's anonymized releases R' (k=3) and S' (k=2) ---
  auto gen = [&](const char* label) { return edu->Gen(edu->FindByLabel(label)); };
  AnonymizedTable anon_r, anon_s;
  anon_r.num_rows = 6;
  anon_r.qid_attrs = {0, 1};
  anon_r.groups.push_back(
      {{gen("Masters"), GenValue::NumericInterval(35, 37)}, {0, 1, 2}});
  anon_r.groups.push_back(
      {{gen("Secondary"), GenValue::NumericInterval(1, 35)}, {3, 4, 5}});
  anon_s.num_rows = 6;
  anon_s.qid_attrs = {0, 1};
  anon_s.groups.push_back(
      {{gen("Masters"), GenValue::NumericInterval(35, 37)}, {0, 1}});
  anon_s.groups.push_back(
      {{gen("ANY"), GenValue::NumericInterval(1, 35)}, {2, 3}});
  anon_s.groups.push_back(
      {{gen("Senior Sec."), GenValue::NumericInterval(1, 35)}, {4, 5}});

  // --- blocking step ---
  auto blocking = RunBlocking(anon_r, anon_s, rule);
  if (!blocking.ok()) Die(blocking.status());
  std::printf("blocking step over R' x S' (36 record pairs):\n");
  std::printf("  mismatched (N): %lld pairs\n",
              static_cast<long long>(blocking->mismatched_pairs));
  std::printf("  matched    (M): %lld pairs\n",
              static_cast<long long>(blocking->matched_pairs));
  std::printf("  unknown    (U): %lld pairs\n\n",
              static_cast<long long>(blocking->unknown_pairs));

  // --- SMC step with the real Paillier-1024 protocol, allowance 10 ---
  smc::SmcConfig smc_cfg;
  smc_cfg.key_bits = 1024;
  smc::SmcMatchOracle oracle(smc_cfg, rule);
  if (auto st = oracle.Init(); !st.ok()) Die(st);

  HybridConfig hc;
  hc.rule = rule;
  hc.smc_allowance_fraction = 10.0 / 36.0;  // the paper's "at most 10 pairs"
  hc.heuristic = SelectionHeuristic::kMinAvgFirst;
  hc.collect_matches = true;
  auto result = RunHybridLinkage(r, s, anon_r, anon_s, hc, oracle);
  if (!result.ok()) Die(result.status());

  std::printf("SMC step (Paillier-1024, three parties, allowance %lld "
              "pairs):\n",
              static_cast<long long>(result->allowance_pairs));
  std::printf("  protocol invocations: %lld\n",
              static_cast<long long>(result->smc_processed));
  std::printf("  crypto ops: %s\n", oracle.costs().ToString().c_str());
  std::printf("  bytes on the wire: %lld over %lld messages\n",
              static_cast<long long>(oracle.bus().total_bytes()),
              static_cast<long long>(oracle.bus().total_messages()));
  std::printf("  unknown pairs left unlabeled -> non-match: %lld\n\n",
              static_cast<long long>(result->unprocessed_pairs));

  std::printf("reported links (record indexes are 0-based):\n");
  for (const auto& [ri, si] : result->matched_row_pairs) {
    std::printf("  r%lld = (%s, %g)  <->  s%lld = (%s, %g)\n",
                static_cast<long long>(ri + 1),
                schema->RenderValue(0, r.at(ri, 0)).c_str(), r.at(ri, 1).num(),
                static_cast<long long>(si + 1),
                schema->RenderValue(0, s.at(si, 0)).c_str(), s.at(si, 1).num());
  }

  if (auto st = EvaluateRecall(r, s, rule, &result.value()); !st.ok()) Die(st);
  std::printf("\nprecision %.0f%%, recall %.1f%% (true matches: %lld)\n",
              100.0 * result->precision, 100.0 * result->recall,
              static_cast<long long>(result->true_matches));
  return 0;
}
