// SMC substrate demo: the §V-A cryptographic machinery on its own.
//
// Walks through (1) Paillier key generation and the homomorphic identities,
// (2) the three-party secure squared-distance protocol with byte-level
// traffic accounting, and (3) the blinded threshold comparison that hides
// even the distance value from the querying party.
//
// Build & run:  ./build/examples/smc_demo

#include <cstdio>

#include "crypto/paillier.h"
#include "smc/protocol.h"
#include "smc/schema_match.h"

using namespace hprl;
using crypto::BigInt;

namespace {
void Die(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}
}  // namespace

int main() {
  // --- 1. Paillier homomorphisms ---
  crypto::SecureRandom rng;  // real OS entropy
  std::printf("generating a 1024-bit Paillier key pair...\n");
  auto kp_or = crypto::GeneratePaillierKeyPair(1024, rng);
  if (!kp_or.ok()) Die(kp_or.status());
  auto& [pub, priv] = *kp_or;

  auto c1 = pub.Encrypt(BigInt(1200), rng);
  auto c2 = pub.Encrypt(BigInt(34), rng);
  if (!c1.ok() || !c2.ok()) Die(c1.ok() ? c2.status() : c1.status());
  auto sum = priv.Decrypt(pub.Add(*c1, *c2));
  auto scaled = priv.Decrypt(pub.ScalarMul(*c1, BigInt(5)));
  if (!sum.ok() || !scaled.ok()) Die(sum.ok() ? scaled.status() : sum.status());
  std::printf("  Dec(Enc(1200) +h Enc(34))  = %s\n", sum->ToString().c_str());
  std::printf("  Dec(Enc(1200) ×h 5)        = %s\n\n",
              scaled->ToString().c_str());

  // --- 2. three-party secure distance with traffic accounting ---
  MatchRule rule;
  {
    AttrRule age;
    age.attr_index = 0;
    age.type = AttrType::kNumeric;
    age.theta = 0.05;
    age.norm = 96;  // |Δage| <= 4.8 matches
    age.name = "age";
    rule.attrs = {age};
  }
  smc::SmcConfig cfg;
  cfg.key_bits = 1024;
  smc::SecureRecordComparator cmp(cfg, rule);
  if (auto st = cmp.Init(); !st.ok()) Die(st);

  auto d = cmp.SecureSquaredDistance(52, 49);
  if (!d.ok()) Die(d.status());
  std::printf("secure squared distance of ages 52 and 49: %.1f (expect 9)\n",
              *d);

  Record alice_rec = {Value::Numeric(52)};
  Record bob_rec = {Value::Numeric(49)};
  auto matched = cmp.Compare(alice_rec, bob_rec);
  if (!matched.ok()) Die(matched.status());
  std::printf("match decision for (52, 49) under θ·norm = 4.8: %s\n\n",
              *matched ? "match" : "non-match");

  std::printf("traffic per directed link:\n");
  for (const auto& [link, stats] : cmp.bus().links()) {
    std::printf("  %-6s -> %-6s : %5lld bytes in %lld messages\n",
                link.first.c_str(), link.second.c_str(),
                static_cast<long long>(stats.bytes),
                static_cast<long long>(stats.messages));
  }
  std::printf("crypto ops: %s\n\n", cmp.costs().ToString().c_str());

  // --- 3. blinded comparison: the querying party learns only the sign ---
  smc::SmcConfig blind_cfg = cfg;
  blind_cfg.reveal_distances = false;
  smc::SecureRecordComparator blind(blind_cfg, rule);
  if (auto st = blind.Init(); !st.ok()) Die(st);
  auto m1 = blind.Compare({Value::Numeric(52)}, {Value::Numeric(49)});
  auto m2 = blind.Compare({Value::Numeric(52)}, {Value::Numeric(70)});
  if (!m1.ok() || !m2.ok()) Die(m1.ok() ? m2.status() : m1.status());
  std::printf("blinded comparison (distance never decrypted):\n");
  std::printf("  (52, 49) -> %s, (52, 70) -> %s\n\n", *m1 ? "match" : "non-match",
              *m2 ? "match" : "non-match");

  // --- 4. private schema matching: the §II preprocessing step ---
  auto schema_a = std::make_shared<Schema>();
  schema_a->AddNumeric("age");
  schema_a->AddText("marital-status");
  auto schema_b = std::make_shared<Schema>();
  schema_b->AddText("MaritalStatus");
  schema_b->AddNumeric("age_years");
  smc::SchemaMatchConfig sm_cfg;
  sm_cfg.threshold = 0.3;
  auto sm = smc::RunPrivateSchemaMatch(*schema_a, *schema_b, sm_cfg);
  if (!sm.ok()) Die(sm.status());
  std::printf("private schema matching (trigrams under commutative "
              "encryption):\n");
  for (const auto& match : sm->matches) {
    std::printf("  %-16s <-> %-16s (similarity %.2f)\n",
                schema_a->attribute(match.r_attr).name.c_str(),
                schema_b->attribute(match.s_attr).name.c_str(),
                match.similarity);
  }
  std::printf("  cost: %lld exponentiations, %lld bytes\n",
              static_cast<long long>(sm->exponentiations),
              static_cast<long long>(sm->bytes));
  return 0;
}
