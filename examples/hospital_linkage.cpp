// Hospital linkage scenario (the paper's §I motivation): two hospitals hold
// overlapping patient populations; a medical researcher (the querying party)
// wants the cross-hospital links without either hospital disclosing
// non-matching records.
//
// This example exercises the library's lower-level API directly and shows a
// capability the experiment driver doesn't: the two data holders pick
// *different* privacy levels (k=16 vs k=64) and even different anonymization
// algorithms — the paper explicitly allows participants to choose their own
// anonymity parameters (§I).
//
// Build & run:  ./build/examples/hospital_linkage

#include <cstdio>

#include "adult/adult.h"
#include "anon/metrics.h"
#include "core/baselines.h"
#include "core/hybrid.h"
#include "data/partition.h"
#include "linkage/oracle.h"

using namespace hprl;

namespace {
void Die(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}
}  // namespace

int main() {
  // --- the two hospitals' patient registries (overlapping population) ---
  auto hierarchies = adult::BuildAdultHierarchies();
  Table population = adult::GenerateAdult(9000, 2026, hierarchies);
  Rng rng(7);
  auto split_or = SplitForLinkage(population, rng);
  if (!split_or.ok()) Die(split_or.status());
  const Table& hospital_a = split_or->d1;
  const Table& hospital_b = split_or->d2;
  std::printf("hospital A: %lld patients, hospital B: %lld patients "
              "(%lld shared)\n\n",
              static_cast<long long>(hospital_a.num_rows()),
              static_cast<long long>(hospital_b.num_rows()),
              static_cast<long long>(split_or->shared_count));

  // --- each hospital anonymizes independently ---
  SchemaPtr schema = population.schema();
  auto make_config = [&](int64_t k) {
    AnonymizerConfig cfg;
    cfg.k = k;
    for (const auto& name :
         {"age", "workclass", "education", "marital-status", "occupation"}) {
      cfg.qid_attrs.push_back(schema->FindIndex(name));
      cfg.hierarchies.push_back(hierarchies.ByName(name));
    }
    cfg.class_attr = schema->FindIndex("income");
    return cfg;
  };

  // Hospital A is privacy-conservative but wants good blocking: MaxEntropy
  // with k=16. Hospital B requires stronger anonymity (k=64) and runs
  // Mondrian, its in-house anonymizer.
  auto anon_a_or = MakeMaxEntropyAnonymizer(make_config(16))->Anonymize(hospital_a);
  if (!anon_a_or.ok()) Die(anon_a_or.status());
  auto anon_b_or = MakeMondrianAnonymizer(make_config(64))->Anonymize(hospital_b);
  if (!anon_b_or.ok()) Die(anon_b_or.status());
  const AnonymizedTable& anon_a = *anon_a_or;
  const AnonymizedTable& anon_b = *anon_b_or;

  std::printf("hospital A release: %lld sequences, k-anonymous for k=16: %s, "
              "income l-diversity: %lld\n",
              static_cast<long long>(anon_a.NumSequences()),
              anon_a.IsKAnonymous(16) ? "yes" : "NO",
              static_cast<long long>(
                  LDiversity(hospital_a, anon_a, schema->FindIndex("income"))));
  std::printf("hospital B release: %lld sequences, k-anonymous for k=64: %s\n\n",
              static_cast<long long>(anon_b.NumSequences()),
              anon_b.IsKAnonymous(64) ? "yes" : "NO");

  // --- the researcher's classifier: 5 demographic QIDs, θ = 0.05 ---
  std::vector<VghPtr> vghs;
  for (const auto& n : adult::AdultQidNames()) {
    vghs.push_back(hierarchies.ByName(n));
  }
  auto rule_or =
      MakeUniformRule(schema, adult::AdultQidNames(), vghs, 5, 0.05);
  if (!rule_or.ok()) Die(rule_or.status());

  // --- hybrid linkage under a 2% SMC budget ---
  HybridConfig hc;
  hc.rule = *rule_or;
  hc.smc_allowance_fraction = 0.02;
  hc.heuristic = SelectionHeuristic::kMinAvgFirst;
  CountingPlaintextOracle oracle(*rule_or);  // stand-in for the SMC circuit
  auto result_or =
      RunHybridLinkage(hospital_a, hospital_b, anon_a, anon_b, hc, oracle);
  if (!result_or.ok()) Die(result_or.status());
  HybridResult& result = result_or.value();
  if (auto st = EvaluateRecall(hospital_a, hospital_b, *rule_or, &result);
      !st.ok()) {
    Die(st);
  }

  std::printf("hybrid linkage:\n");
  std::printf("  blocking efficiency: %.2f%% of %lld pairs\n",
              100.0 * result.blocking_efficiency,
              static_cast<long long>(result.total_pairs));
  std::printf("  SMC invocations: %lld (budget %lld)\n",
              static_cast<long long>(result.smc_processed),
              static_cast<long long>(result.allowance_pairs));
  std::printf("  links reported to the researcher: %lld\n",
              static_cast<long long>(result.reported_matches));
  std::printf("  precision %.0f%%, recall %.1f%%\n\n",
              100.0 * result.precision, 100.0 * result.recall);

  // --- what the alternatives would have cost ---
  auto pure = PureSmcBaseline(hospital_a, hospital_b, *rule_or);
  if (!pure.ok()) Die(pure.status());
  auto sanitized = SanitizationOnlyBaseline(hospital_a, hospital_b, anon_a,
                                            anon_b, *rule_or,
                                            /*optimistic=*/true);
  if (!sanitized.ok()) Die(sanitized.status());
  std::printf("for comparison:\n");
  std::printf("  pure SMC: %lld invocations (%.0fx the hybrid cost)\n",
              static_cast<long long>(pure->smc_processed),
              static_cast<double>(pure->smc_processed) /
                  static_cast<double>(std::max<int64_t>(1, result.smc_processed)));
  std::printf("  sanitization only (recall-first): precision %.2f%% — the "
              "researcher would drown in false links\n",
              100.0 * sanitized->precision);
  return 0;
}
