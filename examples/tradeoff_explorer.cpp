// Trade-off explorer: the paper's central claim is that the hybrid method
// exposes a *three-way* dial between privacy (k), cost (SMC allowance) and
// accuracy (recall; precision is pinned at 100%). This example sweeps the
// (k, allowance) grid and prints the recall surface plus the actual SMC
// spend, so a deployment can pick its operating point.
//
// Build & run:  ./build/examples/tradeoff_explorer [--rows N]

#include <cstdio>

#include "common/flags.h"
#include "core/experiment.h"

using namespace hprl;

int main(int argc, char** argv) {
  FlagSet flags;
  int64_t* rows = flags.AddInt("rows", 9000, "source rows before the split");
  int64_t* seed = flags.AddInt("seed", 1, "data seed");
  Status st = flags.Parse(argc, argv);
  if (st.code() == StatusCode::kNotFound) return 0;  // --help
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  auto data_or = PrepareAdultData(*rows, static_cast<uint64_t>(*seed));
  if (!data_or.ok()) {
    std::fprintf(stderr, "%s\n", data_or.status().ToString().c_str());
    return 1;
  }
  const ExperimentData& data = *data_or;

  const std::vector<int64_t> ks = {4, 16, 64, 256};
  const std::vector<double> allowances = {0.0, 0.005, 0.01, 0.02, 0.05};

  std::printf("privacy / cost / accuracy surface "
              "(|D1| = |D2| = %lld, theta = 0.05, MinAvgFirst)\n\n",
              static_cast<long long>(data.split.d1.num_rows()));
  std::printf("%-6s %-14s %-12s %-14s %-10s\n", "k", "allowance(%)",
              "recall(%)", "SMC spent(%)", "blocked(%)");

  for (int64_t k : ks) {
    for (double allowance : allowances) {
      ExperimentConfig cfg;
      cfg.k = k;
      cfg.smc_allowance_fraction = allowance;
      auto out = RunAdultExperiment(data, cfg);
      if (!out.ok()) {
        std::fprintf(stderr, "%s\n", out.status().ToString().c_str());
        return 1;
      }
      double spent = out->hybrid.total_pairs == 0
                         ? 0
                         : 100.0 *
                               static_cast<double>(out->hybrid.smc_processed) /
                               static_cast<double>(out->hybrid.total_pairs);
      std::printf("%-6lld %-14.2f %-12.2f %-14.3f %-10.2f\n",
                  static_cast<long long>(k), 100.0 * allowance,
                  100.0 * out->hybrid.recall, spent,
                  100.0 * out->hybrid.blocking_efficiency);
    }
    std::printf("\n");
  }
  std::printf("reading the surface: moving down a k-block raises privacy and "
              "lowers accuracy at fixed cost;\nmoving right within a block "
              "buys accuracy with cryptographic work; precision is 100%% "
              "everywhere.\n");
  return 0;
}
