// The paper's §VIII future-work extension, implemented: private record
// linkage over alphanumeric attributes (surname, city) compared with edit
// distance, plus a numeric age.
//
// Text attributes are anonymized by *prefix generalization* ("garcia" ->
// "gar*" -> "g*" -> ANY) inside the same MaxEntropy top-down framework; the
// blocking step bounds edit distance from below with the trie DP bound, so
// provable mismatches are still decided from the anonymized releases alone.
// The SMC step for edit distance is beyond current protocols (that is
// exactly why the paper leaves it as future work), so the oracle here is the
// exact counting oracle — the cost unit (invocations) is unchanged.
//
// Build & run:  ./build/examples/fuzzy_names

#include <cstdio>

#include "core/hybrid.h"
#include "data/names.h"
#include "linkage/ground_truth.h"
#include "linkage/oracle.h"

using namespace hprl;

namespace {
void Die(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}
}  // namespace

int main() {
  // Two registries with a noisy overlap: rows [1500, 4500) of the base
  // population appear in both, but registry B's copies carry transcription
  // typos (one random edit per field with 35% probability) and ±1 age slips.
  Table base = GenerateNameRegistry(4500, 77);
  Table registry_a = base.Gather([] {
    std::vector<int64_t> idx(3000);
    for (int64_t i = 0; i < 3000; ++i) idx[i] = i;
    return idx;
  }());
  Table overlap = base.Gather([] {
    std::vector<int64_t> idx(3000);
    for (int64_t i = 0; i < 3000; ++i) idx[i] = 1500 + i;
    return idx;
  }());
  Table registry_b = CorruptRegistry(overlap, /*typo_rate=*/0.35,
                                     /*age_jitter_rate=*/0.3, /*seed=*/88);

  std::printf("registry A: %lld records, registry B: %lld records "
              "(1500 shared entities, typo'd in B)\n\n",
              static_cast<long long>(registry_a.num_rows()),
              static_cast<long long>(registry_b.num_rows()));

  // Matching rule: surname and city within one edit, age within ~2 years.
  SchemaPtr schema = base.schema();
  MatchRule rule;
  {
    AttrRule surname;
    surname.attr_index = 0;
    surname.type = AttrType::kText;
    surname.theta = 1;  // edit operations
    surname.name = "surname";
    AttrRule city = surname;
    city.attr_index = 1;
    city.name = "city";
    AttrRule age;
    age.attr_index = 2;
    age.type = AttrType::kNumeric;
    age.theta = 2.0 / 96.0;
    age.norm = 96;
    age.name = "age";
    rule.attrs = {surname, city, age};
  }

  // Each registry anonymizes independently: text QIDs use prefix
  // generalization (no VGH), age uses the equi-width hierarchy.
  auto age_vgh_or = MakeEquiWidthVgh(16, 8, {3, 2, 2});
  if (!age_vgh_or.ok()) Die(age_vgh_or.status());
  auto age_vgh = std::make_shared<const Vgh>(std::move(age_vgh_or).value());
  AnonymizerConfig anon_cfg;
  anon_cfg.k = 8;
  anon_cfg.qid_attrs = {0, 1, 2};
  anon_cfg.hierarchies = {nullptr, nullptr, age_vgh};

  auto anonymizer = MakeMaxEntropyAnonymizer(anon_cfg);
  auto anon_a = anonymizer->Anonymize(registry_a);
  if (!anon_a.ok()) Die(anon_a.status());
  auto anon_b = anonymizer->Anonymize(registry_b);
  if (!anon_b.ok()) Die(anon_b.status());
  std::printf("8-anonymous releases: %lld / %lld prefix-generalized "
              "sequences\n",
              static_cast<long long>(anon_a->NumSequences()),
              static_cast<long long>(anon_b->NumSequences()));

  // Hybrid linkage under a 5% SMC budget.
  HybridConfig hc;
  hc.rule = rule;
  hc.smc_allowance_fraction = 0.05;
  hc.heuristic = SelectionHeuristic::kMinAvgFirst;
  CountingPlaintextOracle oracle(rule);
  auto result_or =
      RunHybridLinkage(registry_a, registry_b, *anon_a, *anon_b, hc, oracle);
  if (!result_or.ok()) Die(result_or.status());
  HybridResult& result = result_or.value();
  if (auto st = EvaluateRecall(registry_a, registry_b, rule, &result);
      !st.ok()) {
    Die(st);
  }

  std::printf("blocking: %.2f%% of %lld pairs decided from prefixes alone\n",
              100.0 * result.blocking_efficiency,
              static_cast<long long>(result.total_pairs));
  std::printf("oracle comparisons: %lld (budget %lld)\n",
              static_cast<long long>(result.smc_processed),
              static_cast<long long>(result.allowance_pairs));
  std::printf("links: %lld of %lld true fuzzy matches -> recall %.1f%%, "
              "precision %.0f%%\n",
              static_cast<long long>(result.reported_matches),
              static_cast<long long>(result.true_matches),
              100.0 * result.recall, 100.0 * result.precision);
  return 0;
}
